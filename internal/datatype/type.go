// Package datatype implements MPI-style derived datatypes and the two
// noncontiguous pack/unpack engines compared in the paper: the baseline
// single-context engine (which loses its position on every look-ahead and
// must linearly re-search the datatype, for quadratic total search time) and
// the proposed dual-context look-ahead engine (which keeps a dedicated
// signature-scanning context so the pack context never loses its place).
//
// A derived datatype is a tree describing a set of typed, possibly
// noncontiguous regions of a buffer together with a canonical traversal
// order (the "type map").  The constructors mirror the MPI type constructors
// (MPI_Type_contiguous, MPI_Type_vector, MPI_Type_indexed, ...).  All
// displacements and strides are normalized to bytes internally.
package datatype

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind discriminates datatype tree nodes.
type Kind uint8

// Datatype node kinds.
const (
	KindBase       Kind = iota // a named primitive of fixed size
	KindContiguous             // count repetitions of the element, extent-spaced
	KindVector                 // count blocks of blocklen elements, stride-spaced
	KindIndexed                // blocks with individual lengths and displacements
	KindStruct                 // fields with individual types and displacements
)

func (k Kind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindContiguous:
		return "contiguous"
	case KindVector:
		return "vector"
	case KindIndexed:
		return "indexed"
	case KindStruct:
		return "struct"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Type is an immutable derived-datatype description.  Types are built with
// the package constructors and shared freely; a Type never changes after
// construction.
type Type struct {
	kind   Kind
	name   string // base types only
	size   int    // bytes of actual data in one instance
	extent int    // bytes spanned in memory by one instance
	span   int    // bytes from offset 0 to the last byte the type map touches
	blocks int    // number of contiguous segments in the type map ("signature size")
	depth  int    // tree depth (base = 1)
	sig    uint64 // structural hash of the full tree, memoized at construction

	// contig reports that the type map is a single in-order contiguous
	// run of size bytes starting at displacement 0, so a cursor may emit
	// it as one segment.
	contig bool

	elem     *Type // contiguous, vector, indexed
	count    int   // contiguous, vector
	blocklen int   // vector
	stride   int   // vector: byte distance between block starts

	// indexed: blocks[i] = blockLens[i] elements of elem at displs[i] bytes.
	blockLens []int
	displs    []int

	// struct: fields[i] = one instance of types[i] at displs[i] bytes.
	types []*Type

	// blockTypes caches per-block contiguous child types so cursors can
	// treat every composite node as a list of (childType, byteOffset)
	// pairs without allocating during traversal.
	blockTypes []*Type

	// flat memoizes the coalesced single-instance segment list (Flatten
	// with count 1).  Types are immutable, so the memo never invalidates;
	// racing computations produce identical slices and either store wins.
	// Holders treat the slice as read-only.
	flat atomic.Pointer[[]Segment]

	// canon memoizes Canonicalize(t).  A canonical type points to itself.
	canon atomic.Pointer[Type]
}

// Predefined base types, mirroring the MPI built-ins used by PETSc.
var (
	Byte   = newBase("byte", 1)
	Char   = newBase("char", 1)
	Int32  = newBase("int32", 4)
	Int64  = newBase("int64", 8)
	Float  = newBase("float", 4)
	Double = newBase("double", 8)
)

func newBase(name string, size int) *Type {
	t := &Type{
		kind:   KindBase,
		name:   name,
		size:   size,
		extent: size,
		span:   size,
		blocks: 1,
		depth:  1,
		contig: true,
	}
	h := sigInit(KindBase)
	for i := 0; i < len(name); i++ {
		h = sigMix(h, uint64(name[i]))
	}
	t.sig = sigMix(h, uint64(size))
	return t
}

// NewBase returns a primitive type with the given name and size in bytes.
// It panics if size is not positive.
func NewBase(name string, size int) *Type {
	if size <= 0 {
		panic("datatype: base type size must be positive")
	}
	return newBase(name, size)
}

// Size returns the number of bytes of actual data in one instance of t.
func (t *Type) Size() int { return t.size }

// Extent returns the number of bytes one instance of t spans in memory.
func (t *Type) Extent() int { return t.extent }

// Span returns the number of bytes from offset zero through the last byte
// one instance's type map touches.  It can differ from Extent in both
// directions: smaller when the extent includes trailing padding (a vector's
// last stride), larger when Resized shrank the extent below the data span.
// Memoized at construction; buffer validation uses it without any walk.
func (t *Type) Span() int { return t.span }

// Signature returns a structural hash of the complete type tree (kinds,
// counts, strides, displacements and the extent override), memoized at
// construction.  Two types with equal signatures describe the same type map
// up to hash collision; the plan cache keys on it together with the exact
// size/extent/blocks figures.
func (t *Type) Signature() uint64 { return t.sig }

// Blocks returns the number of contiguous segments in t's type map before
// any coalescing — the "signature size" the look-ahead scans.
func (t *Type) Blocks() int { return t.blocks }

// Depth returns the datatype tree depth; base types have depth 1.
func (t *Type) Depth() int { return t.depth }

// Kind returns the node kind of the root of t.
func (t *Type) Kind() Kind { return t.kind }

// Contig reports whether t's type map is a single in-order contiguous run
// starting at displacement zero.
func (t *Type) Contig() bool { return t.contig }

// AvgBlock returns the mean contiguous-segment length of t in bytes; the
// density heuristic compares this with the engine's dense threshold.
func (t *Type) AvgBlock() float64 {
	if t.blocks == 0 {
		return 0
	}
	return float64(t.size) / float64(t.blocks)
}

// Contiguous returns a type of count consecutive instances of elem, each
// spaced by elem's extent, like MPI_Type_contiguous.  count may be zero.
func Contiguous(count int, elem *Type) *Type {
	if count < 0 {
		panic("datatype: negative count")
	}
	if elem == nil {
		panic("datatype: nil element type")
	}
	t := &Type{
		kind:   KindContiguous,
		size:   count * elem.size,
		extent: count * elem.extent,
		blocks: count * elem.blocks,
		depth:  elem.depth + 1,
		elem:   elem,
		count:  count,
	}
	if count > 0 {
		t.span = (count-1)*elem.extent + elem.span
	}
	t.contig = count == 0 || (elem.contig && elem.size == elem.extent)
	if t.contig {
		t.blocks = 1
		if count == 0 {
			t.blocks = 0
		}
	}
	t.sig = sigMix(sigMix(sigInit(KindContiguous), uint64(count)), elem.sig)
	return t
}

// Vector returns a type of count blocks, each of blocklen instances of elem,
// with block starts stride elements apart (stride measured in units of
// elem's extent), like MPI_Type_vector.
func Vector(count, blocklen, stride int, elem *Type) *Type {
	if elem == nil {
		panic("datatype: nil element type")
	}
	return Hvector(count, blocklen, stride*elem.extent, elem)
}

// Hvector is Vector with the stride given in bytes, like MPI_Type_hvector.
func Hvector(count, blocklen, strideBytes int, elem *Type) *Type {
	if count < 0 || blocklen < 0 {
		panic("datatype: negative count or blocklen")
	}
	if elem == nil {
		panic("datatype: nil element type")
	}
	if count == 0 || blocklen == 0 {
		return Contiguous(0, elem)
	}
	block := Contiguous(blocklen, elem)
	// A vector whose stride equals its block extent degenerates to a
	// contiguous type; fold it so cursors see the cheap path, the same
	// coalescing a dataloop optimizer performs at commit time.
	if strideBytes == block.extent && block.contig {
		return Contiguous(count*blocklen, elem)
	}
	span := (count-1)*strideBytes + block.extent
	if strideBytes < 0 {
		span = block.extent - (count-1)*strideBytes
	}
	t := &Type{
		kind:     KindVector,
		size:     count * block.size,
		extent:   span,
		blocks:   count * block.blocks,
		depth:    block.depth + 1,
		elem:     elem,
		count:    count,
		blocklen: blocklen,
		stride:   strideBytes,
	}
	t.span = block.span
	if strideBytes > 0 {
		t.span = (count-1)*strideBytes + block.span
	}
	t.blockTypes = []*Type{block}
	h := sigInit(KindVector)
	h = sigMix(h, uint64(count))
	h = sigMix(h, uint64(blocklen))
	h = sigMix(h, uint64(int64(strideBytes)))
	t.sig = sigMix(h, elem.sig)
	return t
}

// Indexed returns a type of len(blockLens) blocks where block i holds
// blockLens[i] instances of elem at a displacement of displs[i] elements
// (units of elem's extent), like MPI_Type_indexed.
func Indexed(blockLens, displs []int, elem *Type) *Type {
	if elem == nil {
		panic("datatype: nil element type")
	}
	db := make([]int, len(displs))
	for i, d := range displs {
		db[i] = d * elem.extent
	}
	return Hindexed(blockLens, db, elem)
}

// IndexedBlock returns an Indexed type where every block has the same
// length, like MPI_Type_create_indexed_block.
func IndexedBlock(blocklen int, displs []int, elem *Type) *Type {
	bl := make([]int, len(displs))
	for i := range bl {
		bl[i] = blocklen
	}
	return Indexed(bl, displs, elem)
}

// Hindexed is Indexed with displacements in bytes, like MPI_Type_hindexed.
func Hindexed(blockLens, displsBytes []int, elem *Type) *Type {
	if elem == nil {
		panic("datatype: nil element type")
	}
	if len(blockLens) != len(displsBytes) {
		panic("datatype: blockLens and displs length mismatch")
	}
	n := len(blockLens)
	if n == 0 {
		return Contiguous(0, elem)
	}
	size, blocks, span := 0, 0, 0
	lo, hi := displsBytes[0], displsBytes[0]
	blockTypes := make([]*Type, n)
	h := sigMix(sigInit(KindIndexed), elem.sig)
	for i, bl := range blockLens {
		if bl < 0 {
			panic("datatype: negative block length")
		}
		b := Contiguous(bl, elem)
		blockTypes[i] = b
		size += b.size
		blocks += b.blocks
		d := displsBytes[i]
		if d < lo {
			lo = d
		}
		if d+b.extent > hi {
			hi = d + b.extent
		}
		if d+b.span > span {
			span = d + b.span
		}
		h = sigMix(sigMix(h, uint64(bl)), uint64(int64(d)))
	}
	if lo > 0 {
		lo = 0 // extent includes origin, as in MPI (lb defaults to 0 here)
	}
	t := &Type{
		kind:       KindIndexed,
		size:       size,
		extent:     hi - lo,
		span:       span,
		blocks:     blocks,
		depth:      elem.depth + 2,
		sig:        h,
		elem:       elem,
		blockLens:  append([]int(nil), blockLens...),
		displs:     append([]int(nil), displsBytes...),
		blockTypes: blockTypes,
	}
	// Adjacent in-order blocks starting at zero collapse to contiguous.
	if isContigRun(blockTypes, t.displs) {
		return Contiguous(sum(blockLens), elem)
	}
	return t
}

// Struct returns a type with one instance of types[i] at displsBytes[i] for
// each field, like MPI_Type_create_struct with unit block lengths.  Repeated
// fields can be expressed by passing a Contiguous type.
func Struct(displsBytes []int, types []*Type) *Type {
	if len(types) != len(displsBytes) {
		panic("datatype: types and displs length mismatch")
	}
	if len(types) == 0 {
		return Contiguous(0, Byte)
	}
	size, blocks, depth, span := 0, 0, 0, 0
	lo, hi := displsBytes[0], displsBytes[0]
	h := sigInit(KindStruct)
	for i, ft := range types {
		if ft == nil {
			panic("datatype: nil field type")
		}
		size += ft.size
		blocks += ft.blocks
		if ft.depth > depth {
			depth = ft.depth
		}
		d := displsBytes[i]
		if d < lo {
			lo = d
		}
		if d+ft.extent > hi {
			hi = d + ft.extent
		}
		if d+ft.span > span {
			span = d + ft.span
		}
		h = sigMix(sigMix(h, uint64(int64(d))), ft.sig)
	}
	if lo > 0 {
		lo = 0
	}
	t := &Type{
		kind:       KindStruct,
		size:       size,
		extent:     hi - lo,
		span:       span,
		blocks:     blocks,
		depth:      depth + 1,
		sig:        h,
		displs:     append([]int(nil), displsBytes...),
		types:      append([]*Type(nil), types...),
		blockTypes: types,
	}
	if isContigRun(t.types, t.displs) {
		t.contig = true
		t.blocks = 1
	}
	return t
}

// Subarray returns a type describing the subsizes-shaped region of a
// sizes-shaped row-major array starting at starts, like
// MPI_Type_create_subarray with ORDER_C.  The last dimension varies fastest.
// The returned type's extent equals the full array size so consecutive
// counts address consecutive arrays.
func Subarray(sizes, subsizes, starts []int, elem *Type) *Type {
	nd := len(sizes)
	if len(subsizes) != nd || len(starts) != nd {
		panic("datatype: subarray dimension mismatch")
	}
	if nd == 0 {
		panic("datatype: subarray needs at least one dimension")
	}
	for d := 0; d < nd; d++ {
		if subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			panic(fmt.Sprintf("datatype: subarray dim %d out of range", d))
		}
	}
	// Build innermost-out: a run of subsizes[nd-1] elems, then vectors.
	t := Contiguous(subsizes[nd-1], elem)
	rowExtent := sizes[nd-1] * elem.extent
	for d := nd - 2; d >= 0; d-- {
		t = Hvector(subsizes[d], 1, rowExtent, t)
		rowExtent *= sizes[d]
	}
	// Offset to the start corner and pad extent to the full array.
	off := 0
	mult := elem.extent
	for d := nd - 1; d >= 0; d-- {
		off += starts[d] * mult
		mult *= sizes[d]
	}
	full := elem.extent
	for _, s := range sizes {
		full *= s
	}
	return resized(Struct([]int{off}, []*Type{t}), full)
}

// resized returns t with its extent forced to extentBytes (a reduced form of
// MPI_Type_create_resized with lb=0).  The copy is field-by-field rather
// than a struct copy: the memo fields (flat, canon) must not be duplicated —
// the single-instance flatten is extent-independent and carries over, while
// the canonical form depends on the extent and is left to recompute.
func resized(t *Type, extentBytes int) *Type {
	c := &Type{
		kind:       t.kind,
		name:       t.name,
		size:       t.size,
		extent:     extentBytes,
		span:       t.span,
		blocks:     t.blocks,
		depth:      t.depth,
		contig:     t.contig && t.size == extentBytes,
		elem:       t.elem,
		count:      t.count,
		blocklen:   t.blocklen,
		stride:     t.stride,
		blockLens:  t.blockLens,
		displs:     t.displs,
		types:      t.types,
		blockTypes: t.blockTypes,
	}
	c.sig = sigMix(sigMix(t.sig, sigResized), uint64(int64(extentBytes)))
	if p := t.flat.Load(); p != nil {
		c.flat.Store(p)
	}
	return c
}

// Resized returns t with extent forced to extentBytes and lower bound 0,
// like MPI_Type_create_resized.
func Resized(t *Type, extentBytes int) *Type {
	if extentBytes < 0 {
		panic("datatype: negative extent")
	}
	return resized(t, extentBytes)
}

func isContigRun(blockTypes []*Type, displs []int) bool {
	off := 0
	for i, b := range blockTypes {
		if displs[i] != off || !b.contig || b.size != b.extent {
			return false
		}
		off += b.size
	}
	return off > 0 || len(blockTypes) == 0
}

func sum(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// Structural hashing (FNV-1a) for memoized type signatures.  Constructors
// fold their children's memoized hashes, so hashing is O(node) per
// constructor, never a tree walk.
const (
	fnvOffset  = 14695981039346656037
	fnvPrime   = 1099511628211
	sigResized = 0x9e3779b97f4a7c15 // marker separating a resize from a field
)

func sigInit(k Kind) uint64 { return sigMix(fnvOffset, uint64(k)) }

func sigMix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	// Mix in each byte position so small ints do not collide trivially.
	h ^= v >> 32
	h *= fnvPrime
	return h
}

// nchildren returns how many (childType, byteOffset) pairs node t expands
// into for traversal purposes.
func (t *Type) nchildren() int {
	switch t.kind {
	case KindBase:
		return 0
	case KindContiguous:
		return t.count
	case KindVector:
		return t.count
	case KindIndexed, KindStruct:
		return len(t.blockTypes)
	}
	panic("datatype: unknown kind")
}

// childAt returns the i-th child of t and its byte offset within t.
func (t *Type) childAt(i int) (*Type, int) {
	switch t.kind {
	case KindContiguous:
		return t.elem, i * t.elem.extent
	case KindVector:
		return t.blockTypes[0], i * t.stride
	case KindIndexed:
		return t.blockTypes[i], t.displs[i]
	case KindStruct:
		return t.types[i], t.displs[i]
	}
	panic("datatype: childAt on leaf")
}

// String renders a compact structural description of t.
func (t *Type) String() string {
	var b strings.Builder
	t.describe(&b)
	return b.String()
}

func (t *Type) describe(b *strings.Builder) {
	switch t.kind {
	case KindBase:
		b.WriteString(t.name)
	case KindContiguous:
		fmt.Fprintf(b, "contig(%d, ", t.count)
		t.elem.describe(b)
		b.WriteByte(')')
	case KindVector:
		fmt.Fprintf(b, "hvector(%d, %d, %d, ", t.count, t.blocklen, t.stride)
		t.elem.describe(b)
		b.WriteByte(')')
	case KindIndexed:
		fmt.Fprintf(b, "indexed(%d blocks, ", len(t.blockLens))
		t.elem.describe(b)
		b.WriteByte(')')
	case KindStruct:
		fmt.Fprintf(b, "struct(%d fields)", len(t.types))
	}
}

// Segment is one contiguous piece of a flattened type map: Len bytes at
// byte offset Off from the start of the buffer.
type Segment struct {
	Off, Len int
}

// Flatten expands count instances of t into its full in-order segment list,
// coalescing adjacent segments.  It is the O(size)-memory oracle the
// streaming cursors are tested against, and is also used by scatter plans
// that want an explicit index representation.
//
// The single-instance list is memoized on the (immutable) Type, so repeated
// plan compiles and file-view constructions over the same type never
// re-flatten; for count == 1 the shared memo slice is returned directly and
// must be treated as read-only by the caller.
func Flatten(t *Type, count int) []Segment {
	if count == 0 {
		return nil
	}
	one := t.flatten1()
	if len(one) == 0 {
		return nil
	}
	if count == 1 {
		return one
	}
	segs := make([]Segment, 0, count*len(one))
	for i := 0; i < count; i++ {
		base := i * t.extent
		for _, s := range one {
			// Coalesce across instance boundaries, like the single pass did.
			if k := len(segs); k > 0 && segs[k-1].Off+segs[k-1].Len == base+s.Off {
				segs[k-1].Len += s.Len
				continue
			}
			segs = append(segs, Segment{base + s.Off, s.Len})
		}
	}
	return segs
}

// flatten1 returns the memoized coalesced segment list of one instance.
func (t *Type) flatten1() []Segment {
	if p := t.flat.Load(); p != nil {
		return *p
	}
	segs := []Segment{}
	emit := func(off, n int) {
		if n == 0 {
			return
		}
		if k := len(segs); k > 0 && segs[k-1].Off+segs[k-1].Len == off {
			segs[k-1].Len += n
			return
		}
		segs = append(segs, Segment{off, n})
	}
	flattenInto(t, 0, emit)
	t.flat.Store(&segs)
	return segs
}

func flattenInto(t *Type, base int, emit func(off, n int)) {
	if t.contig {
		emit(base, t.size)
		return
	}
	n := t.nchildren()
	for i := 0; i < n; i++ {
		c, off := t.childAt(i)
		flattenInto(c, base+off, emit)
	}
}

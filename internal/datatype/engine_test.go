package datatype

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// fillPattern fills a buffer with a position-dependent byte pattern so that
// any misplaced pack byte is detected.
func fillPattern(b []byte) {
	for i := range b {
		b[i] = byte(i*131 + 17)
	}
}

// referencePack packs via the Flatten oracle.
func referencePack(t *Type, count int, buf []byte) []byte {
	var out []byte
	for _, s := range Flatten(t, count) {
		out = append(out, buf[s.Off:s.Off+s.Len]...)
	}
	return out
}

// drainPacker collects the full packed stream from a Packer.
func drainPacker(p *Packer, buf []byte) []byte {
	scratch := make([]byte, 1<<20)
	var out []byte
	for {
		c, ok := p.NextChunk(scratch)
		if !ok {
			return out
		}
		if c.Direct {
			n := 0
			for _, s := range c.Segs {
				out = append(out, buf[s.Off:s.Off+s.Len]...)
				n += s.Len
			}
			if n != c.Bytes {
				panic("chunk byte count mismatch")
			}
		} else {
			if len(c.Data) != c.Bytes {
				panic("chunk byte count mismatch")
			}
			out = append(out, c.Data...)
		}
	}
}

func mkbuf(t *Type, count int) []byte {
	n := t.Extent() * count
	if n == 0 {
		n = 1
	}
	b := make([]byte, n)
	fillPattern(b)
	return b
}

func TestEnginesMatchOracleOnPaperColumn(t *testing.T) {
	elem := Contiguous(3, Double)
	col := Vector(64, 1, 64, elem) // first column of a 64x64 matrix
	buf := mkbuf(col, 1)
	want := referencePack(col, 1, buf)
	for _, kind := range []EngineKind{SingleContext, DualContext} {
		p := NewPacker(kind, col, 1, buf, Options{Pipeline: 256})
		got := drainPacker(p, buf)
		if !bytes.Equal(got, want) {
			t.Errorf("%v: packed stream differs from oracle", kind)
		}
	}
}

func TestEnginesMatchOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		ty := randomType(rng, 3)
		count := 1 + rng.Intn(3)
		buf := mkbuf(ty, count)
		want := referencePack(ty, count, buf)
		opt := Options{
			Pipeline:       32 * (1 + rng.Intn(32)),
			LookAhead:      1 + rng.Intn(20),
			DenseThreshold: 1 << uint(rng.Intn(12)),
		}
		for _, kind := range []EngineKind{SingleContext, DualContext} {
			p := NewPacker(kind, ty, count, buf, opt)
			got := drainPacker(p, buf)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d %v (%v, count %d, opt %+v): stream differs (len %d vs %d)",
					trial, kind, ty, count, opt, len(got), len(want))
			}
			if p.Remaining() {
				t.Fatalf("trial %d %v: Remaining() true after drain", trial, kind)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		ty := randomType(rng, 3)
		count := 1 + rng.Intn(3)
		src := mkbuf(ty, count)
		packed := Pack(ty, count, src)
		if len(packed) != ty.Size()*count {
			t.Fatalf("trial %d: packed %d bytes, want %d", trial, len(packed), ty.Size()*count)
		}
		dst := make([]byte, len(src))
		Unpack(ty, count, dst, packed)
		// Every byte inside the type map must match; bytes outside stay 0.
		for _, s := range Flatten(ty, count) {
			if !bytes.Equal(dst[s.Off:s.Off+s.Len], src[s.Off:s.Off+s.Len]) {
				t.Fatalf("trial %d: segment %v differs after round trip", trial, s)
			}
		}
	}
}

func TestUnpackerIncrementalArbitrarySlices(t *testing.T) {
	ty := Vector(100, 2, 5, Double)
	src := mkbuf(ty, 1)
	packed := referencePack(ty, 1, src)
	dst := make([]byte, len(src))
	u := NewUnpacker(ty, 1, dst)
	rng := rand.New(rand.NewSource(23))
	for off := 0; off < len(packed); {
		n := 1 + rng.Intn(37)
		if off+n > len(packed) {
			n = len(packed) - off
		}
		u.Consume(packed[off : off+n])
		off += n
	}
	if !u.Done() {
		t.Fatal("unpacker not done after full stream")
	}
	for _, s := range Flatten(ty, 1) {
		if !bytes.Equal(dst[s.Off:s.Off+s.Len], src[s.Off:s.Off+s.Len]) {
			t.Fatalf("segment %v differs", s)
		}
	}
}

func TestUnpackerOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u := NewUnpacker(Double, 1, make([]byte, 8))
	u.Consume(make([]byte, 9))
}

func TestUnpackUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Unpack(Double, 1, make([]byte, 8), make([]byte, 4))
}

func TestSingleContextSearchesOnSparse(t *testing.T) {
	// A sparse type (8-byte blocks, wide stride) must trigger the baseline
	// re-search on every chunk after the first.
	ty := Vector(4096, 1, 8, Double)
	buf := mkbuf(ty, 1)
	p := NewPacker(SingleContext, ty, 1, buf, Options{Pipeline: 1024})
	drainPacker(p, buf)
	m := p.Metrics()
	if m.Searches == 0 {
		t.Fatal("baseline engine never searched on a sparse type")
	}
	if m.SearchSegments == 0 {
		t.Fatal("searches visited no segments")
	}
	if m.PackedBytes != int64(ty.Size()) {
		t.Fatalf("packed %d bytes, want %d", m.PackedBytes, ty.Size())
	}
}

func TestDualContextNeverSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		ty := randomType(rng, 3)
		buf := mkbuf(ty, 2)
		p := NewPacker(DualContext, ty, 2, buf, Options{Pipeline: 128})
		drainPacker(p, buf)
		if m := p.Metrics(); m.Searches != 0 || m.SearchSegments != 0 {
			t.Fatalf("trial %d: dual-context engine searched (%+v)", trial, m)
		}
	}
}

func TestSearchCostQuadraticVsConstant(t *testing.T) {
	// Core claim of the paper: baseline search segments grow quadratically
	// with datatype size, dual-context look-ahead stays linear overall.
	search := func(n int) (single, dual int64) {
		ty := Vector(n, 1, 8, Double)
		buf := mkbuf(ty, 1)
		ps := NewPacker(SingleContext, ty, 1, buf, Options{Pipeline: 512})
		drainPacker(ps, buf)
		pd := NewPacker(DualContext, ty, 1, buf, Options{Pipeline: 512})
		drainPacker(pd, buf)
		return ps.Metrics().SearchSegments, pd.Metrics().SearchSegments
	}
	s1, d1 := search(1 << 10)
	s2, d2 := search(1 << 12)
	if d1 != 0 || d2 != 0 {
		t.Fatalf("dual-context searched: %d, %d", d1, d2)
	}
	// 4x the datatype should cost ~16x the search; allow generous slack.
	if s2 < 8*s1 {
		t.Fatalf("baseline search not superlinear: %d -> %d", s1, s2)
	}
}

func TestDensePathTaken(t *testing.T) {
	// Large contiguous blocks must ride the direct path under the default
	// threshold.
	ty := Vector(64, 2048, 4096, Double) // 16 KiB blocks
	buf := mkbuf(ty, 1)
	p := NewPacker(DualContext, ty, 1, buf, Options{})
	drainPacker(p, buf)
	m := p.Metrics()
	if m.DirectBytes == 0 {
		t.Fatal("dense type never took the direct path")
	}
	if m.PackedBytes != 0 {
		t.Fatalf("dense type packed %d bytes", m.PackedBytes)
	}
}

func TestSparsePathTaken(t *testing.T) {
	ty := Vector(512, 1, 4, Double)
	buf := mkbuf(ty, 1)
	p := NewPacker(DualContext, ty, 1, buf, Options{})
	drainPacker(p, buf)
	m := p.Metrics()
	if m.DirectBytes != 0 {
		t.Fatalf("sparse type sent %d bytes direct", m.DirectBytes)
	}
	if m.PackedBytes != int64(ty.Size()) {
		t.Fatalf("packed %d, want %d", m.PackedBytes, ty.Size())
	}
}

func TestDenseThresholdBoundary(t *testing.T) {
	// avg block exactly at threshold is dense; below is sparse.
	mk := func(blockBytes int) Metrics {
		ty := Hvector(64, 1, 2*blockBytes, NewBase("blk", blockBytes))
		buf := mkbuf(ty, 1)
		p := NewPacker(DualContext, ty, 1, buf, Options{DenseThreshold: 128})
		drainPacker(p, buf)
		return p.Metrics()
	}
	if m := mk(128); m.DirectBytes == 0 {
		t.Error("block == threshold should be dense")
	}
	if m := mk(127); m.DirectBytes != 0 {
		t.Error("block < threshold should be sparse")
	}
}

func TestPackerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	NewPacker(DualContext, Contiguous(100, Double), 1, make([]byte, 8), Options{})
}

func TestPackerScratchValidation(t *testing.T) {
	p := NewPacker(DualContext, Vector(16, 1, 4, Double), 1, make([]byte, 16*4*8), Options{Pipeline: 1024})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short scratch")
		}
	}()
	p.NextChunk(make([]byte, 16))
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Chunks: 1, PackedBytes: 2, DirectBytes: 3, PackedSegments: 4,
		DirectSegments: 5, ScannedSegments: 6, SearchSegments: 7, Searches: 8}
	b := a
	b.Add(a)
	if b.Chunks != 2 || b.PackedBytes != 4 || b.Searches != 16 || b.ScannedSegments != 12 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestEngineKindString(t *testing.T) {
	if SingleContext.String() != "single-context" || DualContext.String() != "dual-context" {
		t.Fatal("bad EngineKind strings")
	}
}

func TestPackQuickProperty(t *testing.T) {
	// Property: both engines agree bytewise with the oracle for arbitrary
	// vector geometries.
	f := func(countRaw, blRaw, gapRaw, pipeRaw uint8) bool {
		count := 1 + int(countRaw)%64
		bl := 1 + int(blRaw)%8
		stride := bl + int(gapRaw)%8
		ty := Vector(count, bl, stride, Double)
		buf := mkbuf(ty, 1)
		want := referencePack(ty, 1, buf)
		opt := Options{Pipeline: 32 + int(pipeRaw)}
		a := drainPacker(NewPacker(SingleContext, ty, 1, buf, opt), buf)
		b := drainPacker(NewPacker(DualContext, ty, 1, buf, opt), buf)
		return bytes.Equal(a, want) && bytes.Equal(b, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTotalBytes(t *testing.T) {
	ty := Vector(10, 2, 4, Double)
	p := NewPacker(DualContext, ty, 3, mkbuf(ty, 3), Options{})
	if p.TotalBytes() != int64(ty.Size())*3 {
		t.Fatalf("TotalBytes = %d", p.TotalBytes())
	}
}

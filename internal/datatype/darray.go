package datatype

import "fmt"

// Darray returns the datatype selecting one process's block of a
// block-distributed multidimensional array, a reduced form of
// MPI_Type_create_darray (block distribution per dimension, C order): the
// global array has the given sizes, the process grid has procs[d] processes
// per dimension, and coords[d] is this process's position.  The block
// bounds follow the PETSc-style near-equal split.  The returned type's
// extent is the full array, so it composes with file views and window
// layouts the way the MPI type does.
func Darray(sizes, procs, coords []int, elem *Type) *Type {
	nd := len(sizes)
	if len(procs) != nd || len(coords) != nd {
		panic("datatype: darray dimension mismatch")
	}
	subsizes := make([]int, nd)
	starts := make([]int, nd)
	for d := 0; d < nd; d++ {
		if procs[d] < 1 || coords[d] < 0 || coords[d] >= procs[d] {
			panic(fmt.Sprintf("datatype: darray dim %d: coord %d not in grid of %d", d, coords[d], procs[d]))
		}
		lo, hi := blockRange(sizes[d], procs[d], coords[d])
		starts[d] = lo
		subsizes[d] = hi - lo
	}
	return Subarray(sizes, subsizes, starts, elem)
}

// blockRange splits n items over p parts, part k getting the near-equal
// range (first n%p parts take one extra).
func blockRange(n, p, k int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = k*base + min(k, rem)
	size := base
	if k < rem {
		size++
	}
	return lo, lo + size
}

// Equal reports whether two types describe the same type map: identical
// sequences of (offset, length) segments.  Structure may differ (e.g. a
// vector versus the equivalent indexed type); only the map matters, like
// MPI type signature plus layout equality.
func Equal(a, b *Type) bool {
	if a.Size() != b.Size() || a.Extent() != b.Extent() {
		return false
	}
	ca := NewCursor(a, 1)
	cb := NewCursor(b, 1)
	for {
		// Compare coalesced runs so differing internal block boundaries
		// do not produce false negatives.
		oa, na, oka := nextCoalesced(ca)
		ob, nb, okb := nextCoalesced(cb)
		if oka != okb {
			return false
		}
		if !oka {
			return true
		}
		if oa != ob || na != nb {
			return false
		}
	}
}

// nextCoalesced returns the next maximal contiguous run of a cursor.
func nextCoalesced(c *Cursor) (off, n int, ok bool) {
	off, n, ok = c.NextRun(1 << 62)
	if !ok {
		return 0, 0, false
	}
	for {
		o2, n2, ok2 := c.NextRun(1 << 62)
		if !ok2 {
			return off, n, true
		}
		if o2 == off+n {
			n += n2
			continue
		}
		// Push the lookahead run back into the cursor's pending slot (we
		// are in the cursor's package; NextRun had fully consumed it).
		c.pendOff, c.pendLen = o2, n2
		c.emitted -= int64(n2)
		return off, n, true
	}
}

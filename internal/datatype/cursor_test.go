package datatype

import (
	"math/rand"
	"reflect"
	"testing"
)

// drain collects all runs from a cursor with the given budget per call.
func drain(c *Cursor, budget int) []Segment {
	var segs []Segment
	for {
		off, n, ok := c.NextRun(budget)
		if !ok {
			return segs
		}
		segs = append(segs, Segment{off, n})
	}
}

// coalesce merges adjacent segments, for comparing against Flatten.
func coalesce(in []Segment) []Segment {
	var out []Segment
	for _, s := range in {
		if s.Len == 0 {
			continue
		}
		if k := len(out); k > 0 && out[k-1].Off+out[k-1].Len == s.Off {
			out[k-1].Len += s.Len
			continue
		}
		out = append(out, s)
	}
	return out
}

func TestCursorMatchesFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		ty := randomType(rng, 3)
		count := rng.Intn(3) + 1
		want := Flatten(ty, count)
		budget := 1 + rng.Intn(64)
		got := coalesce(drain(NewCursor(ty, count), budget))
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: got %v, want empty", trial, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%v, count %d, budget %d):\n got %v\nwant %v",
				trial, ty, count, budget, got, want)
		}
	}
}

func TestCursorSplitsLongSegments(t *testing.T) {
	c := NewCursor(Contiguous(10, Double), 1) // one 80-byte segment
	var got []Segment
	for {
		off, n, ok := c.NextRun(16)
		if !ok {
			break
		}
		if n > 16 {
			t.Fatalf("run length %d exceeds budget", n)
		}
		got = append(got, Segment{off, n})
	}
	if len(got) != 5 {
		t.Fatalf("got %d runs, want 5", len(got))
	}
	if c.BytesEmitted() != 80 {
		t.Fatalf("emitted %d, want 80", c.BytesEmitted())
	}
}

func TestCursorDoneAndReset(t *testing.T) {
	ty := Vector(4, 1, 2, Double)
	c := NewCursor(ty, 2)
	if c.Done() {
		t.Fatal("fresh cursor reports done")
	}
	drain(c, 1024)
	if !c.Done() {
		t.Fatal("exhausted cursor not done")
	}
	if _, _, ok := c.NextRun(8); ok {
		t.Fatal("NextRun after done returned data")
	}
	c.Reset()
	if c.Done() || c.BytesEmitted() != 0 {
		t.Fatal("reset did not rewind")
	}
	if got := coalesce(drain(c, 1024)); !reflect.DeepEqual(got, Flatten(ty, 2)) {
		t.Fatalf("post-reset drain mismatch: %v", got)
	}
}

func TestCursorZeroBudget(t *testing.T) {
	c := NewCursor(Double, 1)
	if _, _, ok := c.NextRun(0); ok {
		t.Fatal("zero budget returned data")
	}
}

func TestCloneIndependence(t *testing.T) {
	ty := Vector(8, 1, 3, Double)
	a := NewCursor(ty, 1)
	a.NextRun(8)
	a.NextRun(8)
	b := a.Clone()
	restA := drain(a, 8)
	restB := drain(b, 8)
	if !reflect.DeepEqual(restA, restB) {
		t.Fatalf("clone diverged: %v vs %v", restA, restB)
	}
	// Draining b again must yield nothing, and a fresh clone of a (done)
	// must also be done.
	if !a.Clone().Done() {
		t.Fatal("clone of done cursor not done")
	}
}

func TestPeekDoesNotMove(t *testing.T) {
	ty := Vector(16, 1, 4, Double)
	c := NewCursor(ty, 1)
	c.NextRun(8)
	before := c.BytesEmitted()
	segs, bytes := c.PeekSegments(5, nil)
	if len(segs) != 5 || bytes != 40 {
		t.Fatalf("peek returned %d segs / %d bytes, want 5/40", len(segs), bytes)
	}
	if c.BytesEmitted() != before {
		t.Fatal("peek moved the cursor")
	}
	// The peeked segments must equal what the cursor subsequently emits.
	var got []Segment
	for i := 0; i < 5; i++ {
		off, n, _ := c.NextRun(1 << 20)
		got = append(got, Segment{off, n})
	}
	if !reflect.DeepEqual(got, segs) {
		t.Fatalf("peek/emit mismatch: %v vs %v", segs, got)
	}
}

func TestPeekIncludesPending(t *testing.T) {
	c := NewCursor(Contiguous(4, Double), 1) // single 32-byte segment
	c.NextRun(8)                             // leaves 24 pending
	segs, bytes := c.PeekSegments(3, nil)
	if len(segs) != 1 || bytes != 24 || segs[0] != (Segment{8, 24}) {
		t.Fatalf("peek over pending = %v (%d bytes)", segs, bytes)
	}
}

func TestAdvanceSegmentsConsumes(t *testing.T) {
	ty := Vector(8, 1, 2, Double)
	c := NewCursor(ty, 1)
	segs, bytes := c.AdvanceSegments(3, nil)
	if len(segs) != 3 || bytes != 24 {
		t.Fatalf("advance = %v (%d bytes)", segs, bytes)
	}
	if c.BytesEmitted() != 24 {
		t.Fatalf("emitted %d, want 24", c.BytesEmitted())
	}
	off, _, _ := c.NextRun(8)
	if off != 3*16 {
		t.Fatalf("next run at %d, want 48", off)
	}
}

func TestSeekBytesRestoresPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		ty := randomType(rng, 3)
		count := 1 + rng.Intn(2)
		total := ty.Size() * count
		if total == 0 {
			continue
		}
		// Walk to a random position, remember the rest, then re-search to
		// the same position on a second cursor and compare tails.
		target := int64(rng.Intn(total))
		a := NewCursor(ty, count)
		for a.BytesEmitted() < target {
			a.NextRun(int(target - a.BytesEmitted()))
		}
		tailA := drain(a, 32)

		b := NewCursor(ty, count)
		b.NextRun(4) // disturb
		visited := b.SeekBytes(target)
		if visited < 0 {
			t.Fatal("negative visit count")
		}
		tailB := drain(b, 32)
		if !reflect.DeepEqual(coalesce(tailA), coalesce(tailB)) {
			t.Fatalf("trial %d: seek tail mismatch at %d:\n%v\n%v", trial, target, tailA, tailB)
		}
	}
}

func TestSeekBytesVisitGrowsWithTarget(t *testing.T) {
	// The executed search really is linear in the seek position: that is
	// the paper's whole point about the baseline engine.
	ty := Vector(1024, 1, 4, Double)
	c := NewCursor(ty, 1)
	early := c.SeekBytes(8 * 8)
	late := c.SeekBytes(8 * 900)
	if late <= early*10 {
		t.Fatalf("search cost not linear: early=%d late=%d", early, late)
	}
}

func TestSeekBytesPanicsPastEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCursor(Double, 1).SeekBytes(9)
}

func TestCursorZeroSizeType(t *testing.T) {
	c := NewCursor(Contiguous(0, Double), 3)
	if _, _, ok := c.NextRun(8); ok {
		t.Fatal("zero-size type produced data")
	}
}

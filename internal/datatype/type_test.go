package datatype

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBaseTypes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int
	}{
		{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8}, {Float, 4}, {Double, 8},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size || c.ty.Extent() != c.size {
			t.Errorf("%v: size/extent = %d/%d, want %d", c.ty, c.ty.Size(), c.ty.Extent(), c.size)
		}
		if !c.ty.Contig() || c.ty.Blocks() != 1 || c.ty.Depth() != 1 {
			t.Errorf("%v: not a unit leaf", c.ty)
		}
	}
}

func TestContiguous(t *testing.T) {
	c := Contiguous(10, Double)
	if c.Size() != 80 || c.Extent() != 80 || !c.Contig() || c.Blocks() != 1 {
		t.Errorf("contig(10,double): %+v", c)
	}
	nested := Contiguous(3, Contiguous(4, Int32))
	if nested.Size() != 48 || !nested.Contig() {
		t.Errorf("nested contig: size=%d contig=%v", nested.Size(), nested.Contig())
	}
	empty := Contiguous(0, Double)
	if empty.Size() != 0 || empty.Blocks() != 0 {
		t.Errorf("empty contig: %+v", empty)
	}
}

func TestVectorBasics(t *testing.T) {
	// 8 blocks of 1 double, stride 8 doubles: the paper's Figure 6 column
	// type (modulo the element being 3 doubles there).
	v := Vector(8, 1, 8, Double)
	if v.Size() != 64 {
		t.Errorf("size = %d, want 64", v.Size())
	}
	if v.Extent() != 7*64+8 {
		t.Errorf("extent = %d, want %d", v.Extent(), 7*64+8)
	}
	if v.Blocks() != 8 || v.Contig() {
		t.Errorf("blocks=%d contig=%v", v.Blocks(), v.Contig())
	}
}

func TestVectorFoldsToContiguous(t *testing.T) {
	// stride == blocklen means the vector is dense; the constructor must
	// coalesce it the way a dataloop optimizer would.
	v := Vector(5, 3, 3, Double)
	if v.Kind() != KindContiguous || !v.Contig() || v.Size() != 120 {
		t.Errorf("dense vector not folded: kind=%v contig=%v", v.Kind(), v.Contig())
	}
}

func TestPaperColumnType(t *testing.T) {
	// Paper Figures 4-6: 8x8 matrix, element = 3 doubles; first column =
	// vector(count=8, blocklen=1, stride=8) of contig(3, double).
	elem := Contiguous(3, Double)
	col := Vector(8, 1, 8, elem)
	if col.Size() != 8*24 {
		t.Errorf("column size = %d, want 192", col.Size())
	}
	if col.Blocks() != 8 {
		t.Errorf("column blocks = %d, want 8", col.Blocks())
	}
	segs := Flatten(col, 1)
	want := []Segment{}
	for i := 0; i < 8; i++ {
		want = append(want, Segment{i * 8 * 24, 24})
	}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("column segments = %v, want %v", segs, want)
	}
}

func TestIndexed(t *testing.T) {
	ix := Indexed([]int{2, 1, 3}, []int{0, 5, 10}, Double)
	if ix.Size() != 6*8 {
		t.Errorf("size = %d, want 48", ix.Size())
	}
	segs := Flatten(ix, 1)
	want := []Segment{{0, 16}, {40, 8}, {80, 24}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestIndexedFoldsToContiguous(t *testing.T) {
	ix := Indexed([]int{2, 3}, []int{0, 2}, Double)
	if ix.Kind() != KindContiguous || !ix.Contig() {
		t.Errorf("adjacent indexed not folded: kind=%v", ix.Kind())
	}
}

func TestIndexedBlock(t *testing.T) {
	ib := IndexedBlock(2, []int{0, 4, 8}, Int32)
	segs := Flatten(ib, 1)
	want := []Segment{{0, 8}, {16, 8}, {32, 8}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestStruct(t *testing.T) {
	// A C struct { double x; int32 tag; } with padding to 16 bytes.
	s := Resized(Struct([]int{0, 8}, []*Type{Double, Int32}), 16)
	if s.Size() != 12 || s.Extent() != 16 {
		t.Errorf("size/extent = %d/%d, want 12/16", s.Size(), s.Extent())
	}
	segs := Flatten(s, 2)
	want := []Segment{{0, 12}, {16, 12}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestStructContigFold(t *testing.T) {
	s := Struct([]int{0, 8}, []*Type{Double, Double})
	if !s.Contig() || s.Blocks() != 1 {
		t.Errorf("adjacent struct fields not marked contiguous: %+v", s)
	}
}

func TestSubarray2D(t *testing.T) {
	// Interior 2x3 region of a 4x5 row-major array of doubles, at (1,1).
	sa := Subarray([]int{4, 5}, []int{2, 3}, []int{1, 1}, Double)
	if sa.Size() != 6*8 {
		t.Errorf("size = %d, want 48", sa.Size())
	}
	if sa.Extent() != 4*5*8 {
		t.Errorf("extent = %d, want 160", sa.Extent())
	}
	segs := Flatten(sa, 1)
	want := []Segment{{(1*5 + 1) * 8, 24}, {(2*5 + 1) * 8, 24}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestSubarray3D(t *testing.T) {
	sa := Subarray([]int{3, 4, 5}, []int{2, 2, 2}, []int{0, 1, 2}, Int32)
	segs := Flatten(sa, 1)
	var want []Segment
	for z := 0; z < 2; z++ {
		for y := 1; y < 3; y++ {
			want = append(want, Segment{(z*20 + y*5 + 2) * 4, 8})
		}
	}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestSubarrayFullIsContig(t *testing.T) {
	sa := Subarray([]int{4, 5}, []int{4, 5}, []int{0, 0}, Double)
	segs := Flatten(sa, 1)
	if len(segs) != 1 || segs[0] != (Segment{0, 160}) {
		t.Errorf("full subarray segments = %v", segs)
	}
}

func TestFlattenCoalesces(t *testing.T) {
	// Two adjacent instances of a contiguous type coalesce into one segment.
	segs := Flatten(Contiguous(4, Double), 3)
	if len(segs) != 1 || segs[0] != (Segment{0, 96}) {
		t.Errorf("segments = %v, want single {0,96}", segs)
	}
}

func TestFlattenCountSpacing(t *testing.T) {
	v := Vector(2, 1, 2, Double) // extent 24, size 16
	segs := Flatten(v, 2)
	// Instance 2 starts at 24, adjacent to instance 1's block at 16..24, so
	// those two blocks coalesce.
	want := []Segment{{0, 8}, {16, 16}, {40, 8}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestNegativeStrideVector(t *testing.T) {
	v := Hvector(3, 1, -16, Double)
	if v.Extent() != 8+32 {
		t.Errorf("extent = %d, want 40", v.Extent())
	}
	segs := Flatten(Struct([]int{32}, []*Type{v}), 1)
	want := []Segment{{32, 8}, {16, 8}, {0, 8}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"neg count contig":  func() { Contiguous(-1, Double) },
		"nil elem contig":   func() { Contiguous(1, nil) },
		"neg count vector":  func() { Vector(-1, 1, 1, Double) },
		"neg blocklen":      func() { Vector(1, -1, 1, Double) },
		"indexed mismatch":  func() { Indexed([]int{1}, []int{0, 1}, Double) },
		"neg block length":  func() { Indexed([]int{-1}, []int{0}, Double) },
		"struct mismatch":   func() { Struct([]int{0}, []*Type{Double, Double}) },
		"nil struct field":  func() { Struct([]int{0}, []*Type{nil}) },
		"subarray range":    func() { Subarray([]int{4}, []int{3}, []int{2}, Double) },
		"subarray mismatch": func() { Subarray([]int{4, 4}, []int{2}, []int{0}, Double) },
		"bad base size":     func() { NewBase("x", 0) },
		"neg resize":        func() { Resized(Double, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTypeString(t *testing.T) {
	elem := Contiguous(3, Double)
	col := Vector(8, 1, 8, elem)
	if s := col.String(); s == "" {
		t.Error("empty String()")
	}
	for _, k := range []Kind{KindBase, KindContiguous, KindVector, KindIndexed, KindStruct, Kind(99)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
}

// randomType builds a random datatype tree for property tests.
func randomType(rng *rand.Rand, depth int) *Type {
	if depth <= 0 || rng.Intn(3) == 0 {
		return []*Type{Byte, Int32, Double}[rng.Intn(3)]
	}
	elem := randomType(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return Contiguous(rng.Intn(4), elem)
	case 1:
		bl := 1 + rng.Intn(3)
		return Vector(1+rng.Intn(4), bl, bl+rng.Intn(3), elem)
	case 2:
		n := 1 + rng.Intn(4)
		bls := make([]int, n)
		dps := make([]int, n)
		off := 0
		for i := range bls {
			bls[i] = rng.Intn(3)
			off += rng.Intn(3)
			dps[i] = off
			off += bls[i]
		}
		return Indexed(bls, dps, elem)
	default:
		n := 1 + rng.Intn(3)
		types := make([]*Type, n)
		dps := make([]int, n)
		off := 0
		for i := range types {
			types[i] = randomType(rng, depth-1)
			off += rng.Intn(8)
			dps[i] = off
			off += types[i].Extent()
		}
		return Struct(dps, types)
	}
}

func TestFlattenInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ty := randomType(rng, 3)
		count := rng.Intn(3) + 1
		segs := Flatten(ty, count)
		total := 0
		for i, s := range segs {
			if s.Len <= 0 {
				t.Fatalf("trial %d: empty segment %v", trial, s)
			}
			if s.Off < 0 {
				t.Fatalf("trial %d: negative offset %v", trial, s)
			}
			if i > 0 && segs[i-1].Off+segs[i-1].Len == s.Off {
				t.Fatalf("trial %d: uncoalesced adjacent segments %v %v", trial, segs[i-1], s)
			}
			total += s.Len
		}
		if total != ty.Size()*count {
			t.Fatalf("trial %d (%v): flatten total %d != size %d", trial, ty, total, ty.Size()*count)
		}
	}
}

func TestBlocksMatchesFlattenUpperBound(t *testing.T) {
	// Blocks() is the pre-coalescing signature size: it must never be less
	// than the number of coalesced segments.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		ty := randomType(rng, 3)
		if got := len(Flatten(ty, 1)); got > ty.Blocks() {
			t.Fatalf("trial %d (%v): %d segments > %d blocks", trial, ty, got, ty.Blocks())
		}
	}
}

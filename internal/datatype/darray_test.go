package datatype

import (
	"math/rand"
	"testing"
)

func TestDarrayCoversArray(t *testing.T) {
	// The union of all processes' darray blocks must tile the array
	// exactly once.
	sizes := []int{7, 5}
	procs := []int{3, 2}
	covered := make([]int, 35)
	for cy := 0; cy < procs[1]; cy++ {
		for cx := 0; cx < procs[0]; cx++ {
			ty := Darray(sizes, procs, []int{cx, cy}, Double)
			if ty.Extent() != 35*8 {
				t.Fatalf("extent = %d, want full array", ty.Extent())
			}
			for _, s := range Flatten(ty, 1) {
				if s.Off%8 != 0 || s.Len%8 != 0 {
					t.Fatalf("unaligned segment %v", s)
				}
				for e := s.Off / 8; e < (s.Off+s.Len)/8; e++ {
					covered[e]++
				}
			}
		}
	}
	for e, c := range covered {
		if c != 1 {
			t.Fatalf("element %d covered %d times", e, c)
		}
	}
}

func TestDarray3D(t *testing.T) {
	ty := Darray([]int{4, 4, 4}, []int{2, 1, 2}, []int{1, 0, 1}, Int32)
	// Block: x in [2,4), y in [0,4), z in [2,4) -> 16 cells.
	if ty.Size() != 16*4 {
		t.Fatalf("size = %d", ty.Size())
	}
	segs := Flatten(ty, 1)
	// First segment starts at (z=2, y=0, x=2).
	if segs[0].Off != (2*16+0*4+2)*4 {
		t.Fatalf("first segment at %d", segs[0].Off)
	}
}

func TestDarrayPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dim mismatch": func() { Darray([]int{4}, []int{2, 2}, []int{0}, Double) },
		"bad coord":    func() { Darray([]int{4}, []int{2}, []int{2}, Double) },
		"bad grid":     func() { Darray([]int{4}, []int{0}, []int{0}, Double) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEqualStructurallyDifferentSameMap(t *testing.T) {
	// A vector and the equivalent indexed type describe the same map.
	v := Vector(4, 2, 5, Double)
	ix := Indexed([]int{2, 2, 2, 2}, []int{0, 5, 10, 15}, Double)
	// Force identical extent for the comparison.
	ix2 := Resized(ix, v.Extent())
	if !Equal(v, ix2) {
		t.Fatal("equivalent types reported unequal")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := Vector(4, 1, 3, Double)
	if Equal(a, Vector(4, 1, 4, Double)) {
		t.Fatal("different strides reported equal")
	}
	if Equal(a, Vector(3, 1, 3, Double)) {
		t.Fatal("different sizes reported equal")
	}
	if Equal(a, Resized(Contiguous(4, Double), a.Extent())) {
		t.Fatal("different maps with equal size/extent reported equal")
	}
}

func TestEqualReflexiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		ty := randomType(rng, 3)
		if !Equal(ty, ty) {
			t.Fatalf("trial %d: type not equal to itself: %v", trial, ty)
		}
	}
}

func TestBlockRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {4, 4}, {3, 5}, {100, 7}} {
		prev := 0
		for k := 0; k < tc.p; k++ {
			lo, hi := blockRange(tc.n, tc.p, k)
			if lo != prev || hi < lo {
				t.Fatalf("n=%d p=%d k=%d: [%d,%d) after %d", tc.n, tc.p, k, lo, hi, prev)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d p=%d: covered %d", tc.n, tc.p, prev)
		}
	}
}

// Package simnet models the hardware the paper's testbed provided: a
// 64-node InfiniBand cluster built from 32 Intel EM64T nodes and 32 AMD
// Opteron nodes, driven here as a deterministic virtual-time cost model.
//
// The message-passing runtime in internal/mpi executes real data movement
// between goroutine ranks and advances per-rank virtual clocks using the
// parameters here: a LogGP-style wire model (per-message overheads, latency,
// bandwidth) plus datatype-processing costs (per-byte copy, per-segment
// handling, signature-scan and re-search costs).  Because every effect the
// paper measures is algorithmic — quadratic re-search, O(N) vs O(log N)
// block movement, zero-byte synchronization coupling — a calibrated cost
// model on top of real execution reproduces the published shapes without
// InfiniBand hardware.
package simnet

import "fmt"

// Params is the virtual-time cost model.  All times are in seconds, sizes in
// bytes.  CPU-side costs (packing, scanning, searching) are divided by the
// rank's speed factor; wire costs are not.
type Params struct {
	// SendOverhead is the CPU cost to initiate a message (o_s).
	SendOverhead float64
	// RecvOverhead is the CPU cost to complete a receive (o_r).
	RecvOverhead float64
	// Latency is the wire latency per message (L).
	Latency float64
	// Bandwidth is the wire bandwidth in bytes per second.
	Bandwidth float64

	// PackPerByte is the cost of copying one byte through an intermediate
	// buffer (pack or unpack).
	PackPerByte float64
	// SegOverhead is the per-contiguous-segment cost while packing or
	// unpacking (loop and address-generation overhead).
	SegOverhead float64
	// GatherSegOverhead is the per-segment cost on the direct (writev-like)
	// path, where data is gathered by the NIC instead of copied.
	GatherSegOverhead float64
	// ScanPerSeg is the cost to examine one segment of the datatype
	// signature during a look-ahead.
	ScanPerSeg float64
	// SearchPerSeg is the cost per segment visited while re-searching a
	// datatype from the beginning (the baseline engine's recovery walk).
	SearchPerSeg float64
	// RendezvousBytes is the message size at which sends switch from the
	// eager protocol (sender returns once the CPU hands off the data) to
	// rendezvous (sender returns when the last byte is on the wire).
	RendezvousBytes int
	// HandSegOverhead is the per-element cost of an application-level
	// hand-tuned pack loop (PETSc's default path).  It is slightly below
	// SegOverhead: a specialized indexed-copy loop beats the generic
	// datatype cursor, which is exactly why the paper's hand-tuned arm
	// stays a few percent ahead of the optimized datatype arm.
	HandSegOverhead float64
}

// IBDDR returns parameters calibrated to the paper's testbed: Mellanox
// MT25208 InfiniBand DDR adapters and mid-2000s x86 nodes.
func IBDDR() Params {
	return Params{
		SendOverhead:      0.7e-6,
		RecvOverhead:      0.7e-6,
		Latency:           4.0e-6,
		Bandwidth:         1.4e9,
		PackPerByte:       1.0 / 5.0e9,
		SegOverhead:       1.5e-9,
		GatherSegOverhead: 4e-9,
		ScanPerSeg:        0.8e-9,
		SearchPerSeg:      2e-9,
		RendezvousBytes:   64 * 1024,
		HandSegOverhead:   1.2e-9,
	}
}

// Cluster describes the machine an mpi.World runs on: shared wire
// parameters, a per-rank CPU speed factor, and a skew model.
type Cluster struct {
	Params
	// Speed holds one multiplier per rank; 1.0 is nominal.  CPU-side costs
	// divide by it.
	Speed []float64
	// Skew generates deterministic per-rank jitter injected before each
	// collective operation, modeling OS noise and the imbalance between
	// heterogeneous cluster halves.  Nil means no skew.
	Skew *SkewModel
	// Faults, when non-nil, injects deterministic link faults (drop,
	// duplication, corruption, delay) and scheduled rank crashes.  The mpi
	// runtime reacts by enabling its reliability layer: checksums, ack
	// timeouts with exponential backoff, and retransmission.
	Faults *FaultPlan

	// NodeOf assigns each rank to a physical node.  Nil leaves the cluster
	// flat: every pair of ranks is separated by the shared Params wire.
	// When set, the mpi runtime adopts it as the world topology for
	// hierarchy-aware collectives.
	NodeOf []int
	// Intra, when non-nil (and NodeOf is set), gives the wire parameters of
	// same-node links — the shared-memory path, orders of magnitude below
	// the network in latency.  Only the wire-side fields (overheads,
	// latency, bandwidth, rendezvous threshold) are consulted per link;
	// CPU-side datatype costs always come from the shared Params.  Nil
	// keeps every link on Params, bit-for-bit identical to a flat cluster.
	Intra *Params
}

// Size returns the number of ranks the cluster hosts.
func (c *Cluster) Size() int { return len(c.Speed) }

// SpeedOf returns the speed factor for rank r.
func (c *Cluster) SpeedOf(r int) float64 {
	if c.Speed == nil {
		return 1
	}
	return c.Speed[r]
}

// LinkParams returns the wire parameters for traffic from rank src to rank
// dst: the intra-node parameters when both ranks share a node and the
// cluster models a two-level fabric, the shared Params otherwise.
func (c *Cluster) LinkParams(src, dst int) *Params {
	if c.Intra != nil && c.NodeOf != nil && c.NodeOf[src] == c.NodeOf[dst] {
		return c.Intra
	}
	return &c.Params
}

// Uniform returns an n-rank homogeneous cluster with the given parameters
// and no skew.
func Uniform(n int, p Params) *Cluster {
	speed := make([]float64, n)
	for i := range speed {
		speed[i] = 1
	}
	return &Cluster{Params: p, Speed: speed}
}

// TwoLevel returns a homogeneous cluster of nodes×perNode ranks on a
// two-level fabric: ranks r/perNode share a node, co-located pairs
// communicate over intra, remote pairs over inter.  Rank order matches the
// hierarchical launcher: node i hosts ranks [i*perNode, (i+1)*perNode).
func TwoLevel(nodes, perNode int, inter, intra Params) *Cluster {
	if nodes < 1 || perNode < 1 {
		panic(fmt.Sprintf("simnet: two-level cluster needs positive dimensions, got %d×%d", nodes, perNode))
	}
	n := nodes * perNode
	c := Uniform(n, inter)
	c.NodeOf = make([]int, n)
	for r := range c.NodeOf {
		c.NodeOf[r] = r / perNode
	}
	ip := intra
	c.Intra = &ip
	return c
}

// ShmIntra returns wire parameters calibrated to a same-node shared-memory
// path on the paper's testbed era: no NIC, no serialization onto a link —
// just a cache-coherent copy through a ring.  Latency and per-message
// overheads sit an order of magnitude below the InfiniBand network and
// bandwidth is memory-bus bound.  CPU-side datatype costs mirror IBDDR:
// packing happens on the same cores regardless of where the bytes go.
func ShmIntra() Params {
	p := IBDDR()
	p.SendOverhead = 0.1e-6
	p.RecvOverhead = 0.1e-6
	p.Latency = 0.3e-6
	p.Bandwidth = 5.0e9
	p.RendezvousBytes = 16 * 1024
	return p
}

// Paper returns an n-rank cluster matching the paper's testbed layout:
//
//   - n ≤ 32: Opteron nodes only (the paper ran ≤32-process experiments
//     entirely on Cluster 2).
//   - 32 < n ≤ 64: one process per node, 32 Intel (speed 1.0) + up to 32
//     Opteron (speed 0.88 — 2.8 GHz Opteron vs 3.6 GHz EM64T).
//   - 64 < n ≤ 128: two processes per node across both clusters.
//
// Mixing the two clusters introduces skew, which the paper calls out as the
// reason its Alltoallw benchmark degrades at scale; the skew magnitude here
// grows once both halves are in play.
func Paper(n int) *Cluster {
	if n < 1 || n > 128 {
		panic(fmt.Sprintf("simnet: paper testbed supports 1..128 ranks, got %d", n))
	}
	const (
		intelSpeed   = 1.0
		opteronSpeed = 0.88
	)
	speed := make([]float64, n)
	hetero := n > 32
	for r := range speed {
		onIntel := false
		if hetero {
			// First half of the ranks land on the Intel cluster, second
			// half on the Opteron cluster (one or two per node).
			onIntel = r < n/2
		}
		if onIntel {
			speed[r] = intelSpeed
		} else {
			speed[r] = opteronSpeed
		}
	}
	skew := &SkewModel{Mean: 1.2e-6, Seed: 0x5eed}
	if hetero {
		skew.Mean = 3.5e-6
	}
	return &Cluster{Params: IBDDR(), Speed: speed, Skew: skew}
}

// SkewModel produces deterministic pseudo-random per-event jitter.  Jitter
// for (rank, seq) is Mean * 2 * u where u is uniform in [0,1), so the mean
// delay is Mean.
type SkewModel struct {
	Mean float64
	Seed uint64
}

// Jitter returns the virtual-time delay injected for the seq-th skew event
// on rank r.
func (s *SkewModel) Jitter(rank int, seq uint64) float64 {
	if s == nil || s.Mean == 0 {
		return 0
	}
	h := splitmix64(s.Seed ^ uint64(rank)*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9)
	u := float64(h>>11) / float64(1<<53)
	return s.Mean * 2 * u
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WireTime returns the serialization time of n bytes on the wire.
func (p Params) WireTime(n int) float64 {
	if p.Bandwidth <= 0 {
		return 0
	}
	return float64(n) / p.Bandwidth
}

package simnet

import (
	"math"
	"testing"
)

func TestUniformCluster(t *testing.T) {
	c := Uniform(8, IBDDR())
	if c.Size() != 8 {
		t.Fatalf("size = %d", c.Size())
	}
	for r := 0; r < 8; r++ {
		if c.SpeedOf(r) != 1 {
			t.Fatalf("speed[%d] = %v", r, c.SpeedOf(r))
		}
	}
	if c.Skew != nil {
		t.Fatal("uniform cluster should have no skew")
	}
}

func TestPaperClusterLayout(t *testing.T) {
	// <=32 ranks: homogeneous Opteron.
	c := Paper(32)
	for r := 0; r < 32; r++ {
		if c.SpeedOf(r) != 0.88 {
			t.Fatalf("32-rank cluster rank %d speed %v, want 0.88", r, c.SpeedOf(r))
		}
	}
	// 64 ranks: heterogeneous halves.
	c = Paper(64)
	if c.SpeedOf(0) != 1.0 || c.SpeedOf(63) != 0.88 {
		t.Fatalf("64-rank speeds: %v / %v", c.SpeedOf(0), c.SpeedOf(63))
	}
	if c.Skew == nil || c.Skew.Mean <= Paper(16).Skew.Mean {
		t.Fatal("heterogeneous cluster should have larger skew")
	}
	c = Paper(128)
	if c.Size() != 128 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestPaperClusterRange(t *testing.T) {
	for _, n := range []int{0, -1, 129} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Paper(%d): expected panic", n)
				}
			}()
			Paper(n)
		}()
	}
}

func TestSkewDeterministicAndBounded(t *testing.T) {
	s := &SkewModel{Mean: 2e-6, Seed: 1}
	sum := 0.0
	const trials = 10000
	for i := uint64(0); i < trials; i++ {
		j := s.Jitter(3, i)
		if j < 0 || j >= 2*2e-6 {
			t.Fatalf("jitter %v out of [0, 2*mean)", j)
		}
		if j != s.Jitter(3, i) {
			t.Fatal("jitter not deterministic")
		}
		sum += j
	}
	mean := sum / trials
	if math.Abs(mean-2e-6) > 0.1e-6 {
		t.Fatalf("empirical mean %v too far from 2e-6", mean)
	}
	// Different ranks see different jitter.
	if s.Jitter(1, 5) == s.Jitter(2, 5) {
		t.Fatal("ranks share jitter")
	}
}

func TestNilSkew(t *testing.T) {
	var s *SkewModel
	if s.Jitter(0, 0) != 0 {
		t.Fatal("nil skew should be zero")
	}
	if (&SkewModel{}).Jitter(0, 0) != 0 {
		t.Fatal("zero-mean skew should be zero")
	}
}

func TestWireTime(t *testing.T) {
	p := Params{Bandwidth: 1e9}
	if got := p.WireTime(1e6); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("WireTime = %v", got)
	}
	if (Params{}).WireTime(100) != 0 {
		t.Fatal("zero bandwidth should give zero wire time")
	}
}

func TestIBDDRSane(t *testing.T) {
	p := IBDDR()
	if p.Latency <= 0 || p.Bandwidth <= 0 || p.PackPerByte <= 0 ||
		p.SegOverhead <= 0 || p.ScanPerSeg <= 0 || p.SearchPerSeg <= 0 {
		t.Fatalf("nonpositive parameter: %+v", p)
	}
	// Latency should dominate per-byte time for small messages.
	if p.Latency < p.WireTime(64) {
		t.Fatal("latency should exceed 64B wire time")
	}
}

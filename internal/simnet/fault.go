package simnet

import "math"

// FaultPlan is a deterministic, seed-driven fault model layered over the
// cluster's wire.  Every decision — whether a given transmission attempt of
// a given message is dropped, duplicated, corrupted or delayed, and when a
// rank crashes — is a pure function of (Seed, link, message sequence,
// attempt), so a run with a fixed plan is exactly reproducible regardless of
// goroutine scheduling.
//
// Probabilities are per transmission attempt and independent; Drop and
// Corrupt both count as a failed attempt for the reliability layer (a
// corrupted copy is really delivered so the receiver's checksum path is
// exercised, but it never matches and the sender must retransmit).
type FaultPlan struct {
	// Seed drives every pseudo-random decision the plan makes.
	Seed uint64

	// Drop is the probability that an attempt's payload is lost on the wire.
	Drop float64
	// Duplicate is the probability that a successfully delivered attempt
	// arrives twice (the receiver's dedup layer discards the extra copy).
	Duplicate float64
	// Corrupt is the probability that an attempt arrives with flipped bits;
	// the receiver's checksum rejects it, which the sender observes as loss.
	// Zero-byte payloads cannot be corrupted; Corrupt acts as Drop for them.
	Corrupt float64
	// DelayMean, when positive, adds a uniform [0, 2*DelayMean) extra wire
	// delay (seconds of virtual time) to every delivered copy.
	DelayMean float64

	// Links, when non-nil, restricts the loss/duplication/corruption/delay
	// model to the listed directed (src, dst) world-rank pairs; nil applies
	// it to every link.  Crashes are unaffected.
	Links []Link

	// CrashAt schedules rank crashes: CrashAt[rank] is the virtual time in
	// seconds at or after which the rank dies at its next operation.
	CrashAt map[int]float64

	linkSet map[Link]struct{} // lazily built from Links
}

// Link is a directed sender→receiver pair of world ranks.
type Link struct{ Src, Dst int }

// Attempt reports the deterministic outcome of transmission attempt number
// attempt (0-based) of message seq on link src→dst: whether the payload is
// lost outright, delivered twice, delivered with corruption, and how much
// extra delay the delivered copy (and its duplicate) suffers.
func (f *FaultPlan) Attempt(src, dst int, seq uint64, attempt int) (drop, dup, corrupt bool, delay float64) {
	if f == nil || !f.onLink(src, dst) {
		return false, false, false, 0
	}
	h := f.Seed
	h = splitmix64(h ^ uint64(src)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(dst)*0xbf58476d1ce4e5b9)
	h = splitmix64(h ^ seq*0x94d049bb133111eb)
	h = splitmix64(h ^ uint64(attempt)*0xd6e8feb86659fd93)
	drop = unit(splitmix64(h^1)) < f.Drop
	dup = unit(splitmix64(h^2)) < f.Duplicate
	corrupt = unit(splitmix64(h^3)) < f.Corrupt
	if f.DelayMean > 0 {
		delay = f.DelayMean * 2 * unit(splitmix64(h^4))
	}
	return drop, dup, corrupt, delay
}

// CorruptByte picks the deterministic payload offset to damage for message
// seq on link src→dst (attempt attempt) given the payload length.
func (f *FaultPlan) CorruptByte(src, dst int, seq uint64, attempt, length int) int {
	if length <= 0 {
		return 0
	}
	h := splitmix64(f.Seed ^ uint64(src)<<32 ^ uint64(dst) ^ seq*0xff51afd7ed558ccd ^ uint64(attempt)<<16 ^ 5)
	return int(h % uint64(length))
}

// Lossy reports whether the plan can interfere with messages at all (as
// opposed to only scheduling crashes).
func (f *FaultPlan) Lossy() bool {
	return f != nil && (f.Drop > 0 || f.Duplicate > 0 || f.Corrupt > 0 || f.DelayMean > 0)
}

// CrashTime returns the scheduled crash time of rank r, or +Inf if the rank
// never crashes.
func (f *FaultPlan) CrashTime(r int) float64 {
	if f == nil || f.CrashAt == nil {
		return math.Inf(1)
	}
	if t, ok := f.CrashAt[r]; ok {
		return t
	}
	return math.Inf(1)
}

func (f *FaultPlan) onLink(src, dst int) bool {
	if f.Links == nil {
		return true
	}
	if f.linkSet == nil {
		f.linkSet = make(map[Link]struct{}, len(f.Links))
		for _, l := range f.Links {
			f.linkSet[l] = struct{}{}
		}
	}
	_, ok := f.linkSet[Link{src, dst}]
	return ok
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

package simnet

import (
	"math"
	"testing"
)

func TestFaultPlanDeterministic(t *testing.T) {
	p := &FaultPlan{Seed: 42, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1, DelayMean: 1e-6}
	q := &FaultPlan{Seed: 42, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1, DelayMean: 1e-6}
	for seq := uint64(0); seq < 200; seq++ {
		for attempt := 0; attempt < 3; attempt++ {
			d1, u1, c1, l1 := p.Attempt(1, 2, seq, attempt)
			d2, u2, c2, l2 := q.Attempt(1, 2, seq, attempt)
			if d1 != d2 || u1 != u2 || c1 != c2 || l1 != l2 {
				t.Fatalf("seq %d attempt %d: plans with equal seeds disagree", seq, attempt)
			}
		}
	}
	// A different seed must give a different decision stream.
	r := &FaultPlan{Seed: 43, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1}
	same := true
	for seq := uint64(0); seq < 200 && same; seq++ {
		d1, u1, c1, _ := p.Attempt(1, 2, seq, 0)
		d2, u2, c2, _ := r.Attempt(1, 2, seq, 0)
		same = d1 == d2 && u1 == u2 && c1 == c2
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-message outcome streams")
	}
}

func TestFaultPlanRates(t *testing.T) {
	p := &FaultPlan{Seed: 7, Drop: 0.1, Duplicate: 0.05}
	const n = 50000
	drops, dups := 0, 0
	for seq := uint64(0); seq < n; seq++ {
		d, u, _, _ := p.Attempt(0, 1, seq, 0)
		if d {
			drops++
		}
		if u {
			dups++
		}
	}
	if f := float64(drops) / n; math.Abs(f-0.1) > 0.01 {
		t.Fatalf("drop rate %.4f far from 0.1", f)
	}
	if f := float64(dups) / n; math.Abs(f-0.05) > 0.01 {
		t.Fatalf("dup rate %.4f far from 0.05", f)
	}
}

func TestFaultPlanLinkFilter(t *testing.T) {
	p := &FaultPlan{Seed: 1, Drop: 1.0, Links: []Link{{Src: 0, Dst: 1}}}
	if d, _, _, _ := p.Attempt(0, 1, 0, 0); !d {
		t.Fatal("listed link not faulty despite Drop=1")
	}
	if d, _, _, _ := p.Attempt(1, 0, 0, 0); d {
		t.Fatal("unlisted link suffered a drop")
	}
}

func TestFaultPlanCrashTime(t *testing.T) {
	p := &FaultPlan{CrashAt: map[int]float64{3: 1.5}}
	if got := p.CrashTime(3); got != 1.5 {
		t.Fatalf("CrashTime(3) = %v", got)
	}
	if got := p.CrashTime(0); !math.IsInf(got, 1) {
		t.Fatalf("CrashTime(0) = %v, want +Inf", got)
	}
	var nilPlan *FaultPlan
	if got := nilPlan.CrashTime(0); !math.IsInf(got, 1) {
		t.Fatalf("nil plan CrashTime = %v", got)
	}
	if d, u, c, l := nilPlan.Attempt(0, 1, 0, 0); d || u || c || l != 0 {
		t.Fatal("nil plan produced faults")
	}
}

func TestCorruptByteInRange(t *testing.T) {
	p := &FaultPlan{Seed: 9}
	for length := 1; length < 64; length++ {
		for seq := uint64(0); seq < 32; seq++ {
			if off := p.CorruptByte(0, 1, seq, 0, length); off < 0 || off >= length {
				t.Fatalf("offset %d out of [0,%d)", off, length)
			}
		}
	}
}

package ts

import (
	"fmt"
	"math"
	"testing"

	"nccd/internal/dmda"
	"nccd/internal/mpi"
	"nccd/internal/petsc"
	"nccd/internal/simnet"
)

func runWorld(t *testing.T, n int, f func(c *mpi.Comm) error) *mpi.World {
	t.Helper()
	w := mpi.NewWorld(simnet.Uniform(n, simnet.IBDDR()), mpi.Optimized())
	if err := w.Run(f); err != nil {
		t.Fatal(err)
	}
	return w
}

// decayError integrates du/dt = -u from u=1 over [0,1] and returns the
// error against e^{-1}.
func decayError(t *testing.T, scheme Scheme, dt float64) float64 {
	t.Helper()
	var e float64
	runWorld(t, 2, func(c *mpi.Comm) error {
		u := petsc.NewVec(c, 6)
		u.Set(1)
		in := &Integrator{Scheme: scheme, Dt: dt, RHS: func(_ float64, u, udot *petsc.Vec) {
			udot.Copy(u)
			udot.Scale(-1)
		}}
		in.Integrate(0, 1, u)
		diff := math.Abs(u.Max() - math.Exp(-1))
		if c.Rank() == 0 {
			e = diff
		}
		return nil
	})
	return e
}

func TestEulerFirstOrder(t *testing.T) {
	e1 := decayError(t, Euler, 0.01)
	e2 := decayError(t, Euler, 0.005)
	ratio := e1 / e2
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("euler order wrong: halving dt gave ratio %.2f, want ~2", ratio)
	}
}

func TestRK4FourthOrder(t *testing.T) {
	e1 := decayError(t, RK4, 0.1)
	e2 := decayError(t, RK4, 0.05)
	ratio := e1 / e2
	if ratio < 12 || ratio > 20 {
		t.Fatalf("rk4 order wrong: halving dt gave ratio %.2f, want ~16", ratio)
	}
}

func TestRK4MuchMoreAccurateThanEuler(t *testing.T) {
	if eE, eR := decayError(t, Euler, 0.05), decayError(t, RK4, 0.05); eR > eE/100 {
		t.Fatalf("rk4 error %v not ≪ euler error %v", eR, eE)
	}
}

func TestHeatEquationOnDA(t *testing.T) {
	// du/dt = ∇²u on a 1-D DA: total heat with Neumann-free (Dirichlet 0)
	// boundaries decays monotonically, and the profile stays bounded.
	runWorld(t, 3, func(c *mpi.Comm) error {
		n := 32
		da := dmda.New(c, []int{n}, 1, dmda.StencilStar, 1, petsc.ScatterDatatype)
		l := da.CreateLocalArray()
		h := 1.0 / float64(n)
		rhs := func(_ float64, u, udot *petsc.Vec) {
			da.GlobalToLocal(u, l)
			own := da.OwnedBox()
			ua := udot.Array()
			idx := 0
			for i := own.Lo[0]; i < own.Hi[0]; i++ {
				li := da.LocalIndex(i, 0, 0, 0)
				left, right := 0.0, 0.0
				if i > 0 {
					left = l[li-1]
				}
				if i < n-1 {
					right = l[li+1]
				}
				ua[idx] = (left + right - 2*l[li]) / (h * h)
				idx++
			}
		}
		u := da.CreateGlobalVec()
		lo, _ := u.Range()
		for i := range u.Array() {
			if g := lo + i; g > n/3 && g < 2*n/3 {
				u.Array()[i] = 1
			}
		}
		heat0 := u.Sum()
		in := &Integrator{Scheme: RK4, Dt: 0.2 * h * h, RHS: rhs}
		steps := 0
		in.Monitor = func(s int, _ float64, _ *petsc.Vec) { steps = s }
		in.Integrate(0, 50*0.2*h*h, u)
		if steps != 50 {
			return fmt.Errorf("steps = %d, want 50", steps)
		}
		heat1 := u.Sum()
		if heat1 >= heat0 || heat1 <= 0 {
			return fmt.Errorf("heat did not decay sanely: %v -> %v", heat0, heat1)
		}
		if mx := u.Max(); mx > 1 {
			return fmt.Errorf("maximum principle violated: %v", mx)
		}
		return nil
	})
}

func TestValidationPanics(t *testing.T) {
	runWorld(t, 1, func(c *mpi.Comm) error {
		u := petsc.NewVec(c, 2)
		mustPanic := func(name string, f func()) error {
			defer func() { recover() }()
			f()
			return fmt.Errorf("%s: expected panic", name)
		}
		if err := mustPanic("no dt", func() { (&Integrator{RHS: func(float64, *petsc.Vec, *petsc.Vec) {}}).Step(0, u) }); err != nil {
			return err
		}
		if err := mustPanic("no rhs", func() { (&Integrator{Dt: 0.1}).Step(0, u) }); err != nil {
			return err
		}
		return nil
	})
}

func TestSchemeString(t *testing.T) {
	if Euler.String() != "euler" || RK4.String() != "rk4" {
		t.Fatal("bad scheme strings")
	}
}

// Package ts implements the time-stepping layer of the mini-PETSc stack
// (the TS box of the paper's Figure 1): explicit integrators for
// du/dt = f(t, u) over distributed vectors.  The right-hand-side callback
// typically performs a DMDA ghost exchange, so each stage evaluation
// exercises the communication stack like any other application kernel.
package ts

import (
	"fmt"

	"nccd/internal/petsc"
)

// RHS evaluates udot = f(t, u).  It may perform collective communication;
// all ranks call it together.
type RHS func(t float64, u, udot *petsc.Vec)

// Scheme selects the integrator.
type Scheme uint8

const (
	// Euler is the explicit (forward) Euler method, first order.
	Euler Scheme = iota
	// RK4 is the classical fourth-order Runge–Kutta method.
	RK4
)

func (s Scheme) String() string {
	if s == Euler {
		return "euler"
	}
	return "rk4"
}

// Integrator advances du/dt = f(t, u) with fixed steps.
type Integrator struct {
	Scheme Scheme
	Dt     float64
	RHS    RHS

	// Monitor, when non-nil, is called after every step with (step, t, u).
	Monitor func(step int, t float64, u *petsc.Vec)

	k1, k2, k3, k4, tmp *petsc.Vec
}

func (in *Integrator) ensureWork(u *petsc.Vec) {
	if in.k1 == nil {
		in.k1 = u.Duplicate()
		in.k2 = u.Duplicate()
		in.k3 = u.Duplicate()
		in.k4 = u.Duplicate()
		in.tmp = u.Duplicate()
	}
}

// Step advances u from time t by one Dt and returns t+Dt.  Collective.
func (in *Integrator) Step(t float64, u *petsc.Vec) float64 {
	if in.Dt <= 0 {
		panic("ts: time step must be positive")
	}
	if in.RHS == nil {
		panic("ts: RHS not set")
	}
	in.ensureWork(u)
	h := in.Dt
	switch in.Scheme {
	case Euler:
		in.RHS(t, u, in.k1)
		u.AXPY(h, in.k1)
	case RK4:
		in.RHS(t, u, in.k1)

		in.tmp.Copy(u)
		in.tmp.AXPY(h/2, in.k1)
		in.RHS(t+h/2, in.tmp, in.k2)

		in.tmp.Copy(u)
		in.tmp.AXPY(h/2, in.k2)
		in.RHS(t+h/2, in.tmp, in.k3)

		in.tmp.Copy(u)
		in.tmp.AXPY(h, in.k3)
		in.RHS(t+h, in.tmp, in.k4)

		u.AXPY(h/6, in.k1)
		u.AXPY(h/3, in.k2)
		u.AXPY(h/3, in.k3)
		u.AXPY(h/6, in.k4)
	default:
		panic(fmt.Sprintf("ts: unknown scheme %d", in.Scheme))
	}
	return t + h
}

// Integrate advances u from t0 until the first time >= t1, in fixed Dt
// steps, and returns the final time and step count.  Collective.
func (in *Integrator) Integrate(t0, t1 float64, u *petsc.Vec) (float64, int) {
	t := t0
	steps := 0
	for t < t1-1e-15 {
		t = in.Step(t, u)
		steps++
		if in.Monitor != nil {
			in.Monitor(steps, t, u)
		}
	}
	return t, steps
}

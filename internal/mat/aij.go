// Package mat implements distributed sparse matrices in PETSc's MPIAIJ
// format: each rank owns a contiguous block of rows, stored as two CSR
// halves — the diagonal block (columns this rank owns) and the off-diagonal
// block (remote columns, renumbered compactly).  MatMult gathers the remote
// column values with a petsc.Scatter, so matrix-vector products exercise the
// same communication backends as every other experiment in the repository.
package mat

import (
	"fmt"
	"sort"

	"nccd/internal/floatbytes"
	"nccd/internal/mpi"
	"nccd/internal/petsc"
)

const flopSec = 0.6e-9

// CSR is a compressed-sparse-row matrix block.
type CSR struct {
	RowPtr []int
	Col    []int
	Val    []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return len(m.RowPtr) - 1 }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Mult computes y = A*x for a sequential CSR block.
func (m *CSR) Mult(x, y []float64) {
	for i := 0; i < m.Rows(); i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		y[i] = s
	}
}

// MultAdd computes y += A*x.
func (m *CSR) MultAdd(x, y []float64) {
	for i := 0; i < m.Rows(); i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		y[i] += s
	}
}

// AIJ is a distributed sparse matrix.  Row and column layouts default to
// PETSc's uniform block distribution but may be arbitrary (e.g. matching a
// distributed array's grid-shaped vectors) via NewAIJWithLayout.
type AIJ struct {
	c          *mpi.Comm
	rowL, colL Layout
	rows, cols int // global
	rlo, rhi   int // owned rows
	clo, chi   int // owned columns (layout of a compatible x vector)

	// assembly state
	triplets  map[[2]int]float64
	assembled bool

	diag CSR // columns [clo, chi), renumbered to local
	off  CSR // remote columns, renumbered into ghostCols positions

	ghostCols []int // sorted distinct remote global column indices
	ghost     []float64
	sc        *petsc.Scatter
	mode      petsc.ScatterMode
}

// NewAIJ creates an empty rows x cols matrix distributed over c with the
// uniform block layout.  mode selects the scatter backend used by MatMult's
// ghost-column gather.  Collective.
func NewAIJ(c *mpi.Comm, rows, cols int, mode petsc.ScatterMode) *AIJ {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return NewAIJWithLayout(c, UniformLayout(rows, c.Size()), UniformLayout(cols, c.Size()), mode)
}

// NewAIJWithLayout creates an empty matrix with explicit row and column
// layouts (identical on every rank).  Vectors passed to Apply must match
// these layouts.  Collective.
func NewAIJWithLayout(c *mpi.Comm, rowL, colL Layout, mode petsc.ScatterMode) *AIJ {
	if rowL.Ranks() != c.Size() || colL.Ranks() != c.Size() {
		panic("mat: layout rank count does not match communicator")
	}
	m := &AIJ{c: c, rowL: rowL, colL: colL, rows: rowL.Global(), cols: colL.Global(),
		mode: mode, triplets: map[[2]int]float64{}}
	m.rlo, m.rhi = rowL.Range(c.Rank())
	m.clo, m.chi = colL.Range(c.Rank())
	return m
}

// GlobalSize returns (rows, cols).
func (m *AIJ) GlobalSize() (int, int) { return m.rows, m.cols }

// OwnedRows returns the owned row range [lo, hi).
func (m *AIJ) OwnedRows() (int, int) { return m.rlo, m.rhi }

// Set assigns value v to entry (i, j).  i must be an owned row; call before
// Assemble.
func (m *AIJ) Set(i, j int, v float64) {
	m.check(i, j)
	m.triplets[[2]int{i, j}] = v
}

// Add accumulates v into entry (i, j).  i must be an owned row; call before
// Assemble.
func (m *AIJ) Add(i, j int, v float64) {
	m.check(i, j)
	m.triplets[[2]int{i, j}] += v
}

func (m *AIJ) check(i, j int) {
	if m.assembled {
		panic("mat: matrix already assembled")
	}
	if i < m.rlo || i >= m.rhi {
		panic(fmt.Sprintf("mat: row %d not owned by rank %d ([%d,%d))", i, m.c.Rank(), m.rlo, m.rhi))
	}
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range [0,%d)", j, m.cols))
	}
}

// Assemble freezes the matrix: builds the diagonal/off-diagonal CSR halves
// and the ghost-column gather plan.  Collective.
func (m *AIJ) Assemble() {
	if m.assembled {
		panic("mat: double assembly")
	}
	m.assembled = true

	// Distinct remote columns, sorted.
	ghostSet := map[int]bool{}
	for k := range m.triplets {
		if j := k[1]; j < m.clo || j >= m.chi {
			ghostSet[j] = true
		}
	}
	m.ghostCols = make([]int, 0, len(ghostSet))
	for j := range ghostSet {
		m.ghostCols = append(m.ghostCols, j)
	}
	sort.Ints(m.ghostCols)
	ghostPos := make(map[int]int, len(m.ghostCols))
	for p, j := range m.ghostCols {
		ghostPos[j] = p
	}
	m.ghost = make([]float64, len(m.ghostCols))

	// Sort triplets into row-major order.
	keys := make([][2]int, 0, len(m.triplets))
	for k := range m.triplets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})

	nloc := m.rhi - m.rlo
	m.diag.RowPtr = make([]int, nloc+1)
	m.off.RowPtr = make([]int, nloc+1)
	for _, k := range keys {
		i, j := k[0]-m.rlo, k[1]
		v := m.triplets[k]
		if j >= m.clo && j < m.chi {
			m.diag.Col = append(m.diag.Col, j-m.clo)
			m.diag.Val = append(m.diag.Val, v)
			m.diag.RowPtr[i+1]++
		} else {
			m.off.Col = append(m.off.Col, ghostPos[j])
			m.off.Val = append(m.off.Val, v)
			m.off.RowPtr[i+1]++
		}
	}
	for i := 0; i < nloc; i++ {
		m.diag.RowPtr[i+1] += m.diag.RowPtr[i]
		m.off.RowPtr[i+1] += m.off.RowPtr[i]
	}
	m.triplets = nil
	m.buildGhostScatter()
}

// buildGhostScatter constructs the plan that gathers the remote column
// values of a compatible x vector into m.ghost.  Requests are not locally
// deducible, so every rank broadcasts its ghost-column list once.
func (m *AIJ) buildGhostScatter() {
	c := m.c
	size, me := c.Size(), c.Rank()

	// Share ghost-column lists (as float64 payload for simplicity).
	counts := make([]int, size)
	mineF := make([]float64, len(m.ghostCols))
	for i, j := range m.ghostCols {
		mineF[i] = float64(j)
	}
	countsF := make([]float64, size)
	countsF[me] = float64(len(m.ghostCols))
	c.Allreduce(countsF, mpi.OpSum)
	total := 0
	for r := 0; r < size; r++ {
		counts[r] = int(countsF[r]) * 8
		total += counts[r]
	}
	allBytes := make([]byte, total)
	c.Allgatherv(floatbytes.Bytes(mineF), counts, allBytes)
	all := floatbytes.Floats(allBytes)

	// Receives: positions of my ghost columns, grouped by owner (the list
	// is sorted by global column, so owner groups are contiguous).
	recvFrom := map[int][]int{}
	for p, j := range m.ghostCols {
		owner := m.colL.Owner(j)
		recvFrom[owner] = append(recvFrom[owner], p)
	}

	// Sends: for each requester, my owned columns it asked for, in its
	// (sorted) request order.
	sendTo := map[int][]int{}
	off := 0
	for r := 0; r < size; r++ {
		n := counts[r] / 8
		if r == me {
			off += n
			continue
		}
		for _, jf := range all[off : off+n] {
			j := int(jf)
			if j >= m.clo && j < m.chi {
				sendTo[r] = append(sendTo[r], j-m.clo)
			}
		}
		off += n
	}

	var plan petsc.Plan
	for r := 0; r < size; r++ {
		if idx, ok := sendTo[r]; ok {
			plan.Sends = append(plan.Sends, petsc.PeerIndices{Peer: r, Local: idx})
		}
	}
	for r := 0; r < size; r++ {
		if idx, ok := recvFrom[r]; ok {
			plan.Recvs = append(plan.Recvs, petsc.PeerIndices{Peer: r, Local: idx})
		}
	}
	m.sc = petsc.NewScatterFromPlan(c, m.chi-m.clo, len(m.ghostCols), plan, m.mode)
}

// Apply computes y = A*x.  x must have the matrix's column layout and y its
// row layout.  Collective.
func (m *AIJ) Apply(x, y *petsc.Vec) {
	if !m.assembled {
		panic("mat: Apply before Assemble")
	}
	if x.GlobalSize() != m.cols || y.GlobalSize() != m.rows {
		panic("mat: vector sizes do not match matrix")
	}
	if xlo, xhi := x.Range(); xlo != m.clo || xhi != m.chi {
		panic("mat: x vector layout does not match matrix columns")
	}
	if ylo, yhi := y.Range(); ylo != m.rlo || yhi != m.rhi {
		panic("mat: y vector layout does not match matrix rows")
	}
	m.sc.DoArrays(x.Array(), m.ghost)
	m.diag.Mult(x.Array(), y.Array())
	m.off.MultAdd(m.ghost, y.Array())
	m.c.Compute(float64(2*(m.diag.NNZ()+m.off.NNZ())) * flopSec)
}

// Diagonal extracts the matrix diagonal into d (row layout).  Collective
// in shape only; purely local communication-wise.
func (m *AIJ) Diagonal(d *petsc.Vec) {
	if !m.assembled {
		panic("mat: Diagonal before Assemble")
	}
	if d.GlobalSize() != m.rows {
		panic("mat: diagonal vector size mismatch")
	}
	da := d.Array()
	for i := range da {
		da[i] = 0
	}
	for i := 0; i < m.diag.Rows(); i++ {
		gi := m.rlo + i
		for p := m.diag.RowPtr[i]; p < m.diag.RowPtr[i+1]; p++ {
			if m.diag.Col[p]+m.clo == gi {
				da[i] = m.diag.Val[p]
			}
		}
	}
}

// NNZ returns the locally stored entry count.
func (m *AIJ) NNZ() int { return m.diag.NNZ() + m.off.NNZ() }

package mat

import (
	"fmt"
	"sort"
)

// Layout describes how a vector's elements are distributed: rank r owns the
// half-open range [Offsets[r], Offsets[r+1]).  It generalizes the uniform
// block distribution so matrices can match grid-shaped layouts (DMDA
// vectors).
type Layout struct {
	Offsets []int // len = ranks+1, nondecreasing, Offsets[0] == 0
}

// NewLayout builds a layout from per-rank local sizes.
func NewLayout(sizes []int) Layout {
	off := make([]int, len(sizes)+1)
	for r, n := range sizes {
		if n < 0 {
			panic("mat: negative local size")
		}
		off[r+1] = off[r] + n
	}
	return Layout{Offsets: off}
}

// UniformLayout reproduces the standard PETSc block distribution of global
// elements over ranks.
func UniformLayout(global, ranks int) Layout {
	sizes := make([]int, ranks)
	base, rem := global/ranks, global%ranks
	for r := range sizes {
		sizes[r] = base
		if r < rem {
			sizes[r]++
		}
	}
	return NewLayout(sizes)
}

// Global returns the total element count.
func (l Layout) Global() int { return l.Offsets[len(l.Offsets)-1] }

// Ranks returns the number of ranks.
func (l Layout) Ranks() int { return len(l.Offsets) - 1 }

// Range returns rank r's [lo, hi) range.
func (l Layout) Range(r int) (int, int) { return l.Offsets[r], l.Offsets[r+1] }

// Owner returns the rank owning global index i (binary search).
func (l Layout) Owner(i int) int {
	if i < 0 || i >= l.Global() {
		panic(fmt.Sprintf("mat: index %d out of range [0,%d)", i, l.Global()))
	}
	// Smallest idx with Offsets[idx] > i is the upper boundary of the
	// owning rank; duplicates from empty ranks sort below it.
	return sort.SearchInts(l.Offsets, i+1) - 1
}

package mat

import (
	"testing"

	"nccd/internal/petsc"
)

func TestLayoutBasics(t *testing.T) {
	l := NewLayout([]int{3, 0, 2, 5})
	if l.Global() != 10 || l.Ranks() != 4 {
		t.Fatalf("global/ranks = %d/%d", l.Global(), l.Ranks())
	}
	if lo, hi := l.Range(2); lo != 3 || hi != 5 {
		t.Fatalf("range(2) = [%d,%d)", lo, hi)
	}
	for i := 0; i < 10; i++ {
		r := l.Owner(i)
		lo, hi := l.Range(r)
		if i < lo || i >= hi {
			t.Fatalf("Owner(%d) = %d with range [%d,%d)", i, r, lo, hi)
		}
	}
}

func TestLayoutOwnerSkipsEmptyRanks(t *testing.T) {
	l := NewLayout([]int{0, 4, 0, 0, 4})
	if l.Owner(0) != 1 {
		t.Fatalf("Owner(0) = %d, want 1", l.Owner(0))
	}
	if l.Owner(4) != 4 {
		t.Fatalf("Owner(4) = %d, want 4", l.Owner(4))
	}
}

func TestUniformLayoutMatchesOwnershipRange(t *testing.T) {
	for _, tc := range []struct{ global, ranks int }{{10, 3}, {7, 7}, {3, 5}, {128, 8}} {
		l := UniformLayout(tc.global, tc.ranks)
		for r := 0; r < tc.ranks; r++ {
			lo, hi := petsc.OwnershipRange(tc.global, tc.ranks, r)
			glo, ghi := l.Range(r)
			if lo != glo || hi != ghi {
				t.Fatalf("g=%d ranks=%d rank=%d: [%d,%d) vs [%d,%d)",
					tc.global, tc.ranks, r, glo, ghi, lo, hi)
			}
		}
		for i := 0; i < tc.global; i++ {
			if l.Owner(i) != petsc.Owner(tc.global, tc.ranks, i) {
				t.Fatalf("owner mismatch at %d", i)
			}
		}
	}
}

func TestLayoutPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative size": func() { NewLayout([]int{-1}) },
		"oob owner":     func() { NewLayout([]int{2}).Owner(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

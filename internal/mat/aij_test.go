package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nccd/internal/mpi"
	"nccd/internal/petsc"
	"nccd/internal/simnet"
)

func runWorld(t *testing.T, n int, cfg mpi.Config, f func(c *mpi.Comm) error) *mpi.World {
	t.Helper()
	w := mpi.NewWorld(simnet.Uniform(n, simnet.IBDDR()), cfg)
	if err := w.Run(f); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCSRMult(t *testing.T) {
	// [1 2; 0 3] * [4 5]^T = [14 15]
	m := CSR{RowPtr: []int{0, 2, 3}, Col: []int{0, 1, 1}, Val: []float64{1, 2, 3}}
	y := make([]float64, 2)
	m.Mult([]float64{4, 5}, y)
	if y[0] != 14 || y[1] != 15 {
		t.Fatalf("CSR mult = %v", y)
	}
	m.MultAdd([]float64{4, 5}, y)
	if y[0] != 28 || y[1] != 30 {
		t.Fatalf("CSR multadd = %v", y)
	}
	if m.Rows() != 2 || m.NNZ() != 3 {
		t.Fatalf("shape wrong")
	}
}

// denseRef multiplies a dense reference matrix by x.
func denseRef(a [][]float64, x []float64) []float64 {
	y := make([]float64, len(a))
	for i := range a {
		for j, v := range a[i] {
			y[i] += v * x[j]
		}
	}
	return y
}

func TestAIJMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(25)
		np := 1 + rng.Intn(5)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
			for j := range dense[i] {
				if rng.Float64() < 0.2 {
					dense[i][j] = rng.NormFloat64()
				}
			}
		}
		xv := make([]float64, n)
		for i := range xv {
			xv[i] = rng.NormFloat64()
		}
		want := denseRef(dense, xv)

		for _, mode := range []petsc.ScatterMode{petsc.ScatterHandTuned, petsc.ScatterDatatype} {
			runWorld(t, np, mpi.Optimized(), func(c *mpi.Comm) error {
				m := NewAIJ(c, n, n, mode)
				rlo, rhi := m.OwnedRows()
				for i := rlo; i < rhi; i++ {
					for j := 0; j < n; j++ {
						if dense[i][j] != 0 {
							m.Set(i, j, dense[i][j])
						}
					}
				}
				m.Assemble()

				x := petsc.NewVec(c, n)
				x.SetFromFunc(func(i int) float64 { return xv[i] })
				y := petsc.NewVec(c, n)
				m.Apply(x, y)

				lo, _ := y.Range()
				for i, v := range y.Array() {
					if math.Abs(v-want[lo+i]) > 1e-12 {
						return fmt.Errorf("trial %d mode %v: y[%d] = %v, want %v",
							trial, mode, lo+i, v, want[lo+i])
					}
				}
				return nil
			})
		}
	}
}

func TestAIJAddAccumulates(t *testing.T) {
	runWorld(t, 2, mpi.Optimized(), func(c *mpi.Comm) error {
		m := NewAIJ(c, 4, 4, petsc.ScatterHandTuned)
		rlo, rhi := m.OwnedRows()
		for i := rlo; i < rhi; i++ {
			m.Add(i, i, 1)
			m.Add(i, i, 2)
		}
		m.Assemble()
		x := petsc.NewVec(c, 4)
		x.Set(1)
		y := petsc.NewVec(c, 4)
		m.Apply(x, y)
		for _, v := range y.Array() {
			if v != 3 {
				return fmt.Errorf("Add did not accumulate: %v", v)
			}
		}
		return nil
	})
}

func TestAIJDiagonal(t *testing.T) {
	runWorld(t, 3, mpi.Optimized(), func(c *mpi.Comm) error {
		n := 9
		m := NewAIJ(c, n, n, petsc.ScatterHandTuned)
		rlo, rhi := m.OwnedRows()
		for i := rlo; i < rhi; i++ {
			m.Set(i, i, float64(i+1))
			if i > 0 {
				m.Set(i, i-1, -1)
			}
		}
		m.Assemble()
		d := petsc.NewVec(c, n)
		m.Diagonal(d)
		lo, _ := d.Range()
		for i, v := range d.Array() {
			if v != float64(lo+i+1) {
				return fmt.Errorf("diag[%d] = %v", lo+i, v)
			}
		}
		return nil
	})
}

func TestAIJTridiagonalLaplacian(t *testing.T) {
	// 1-D Laplacian times the linear function is zero in the interior.
	n := 32
	runWorld(t, 4, mpi.Baseline(), func(c *mpi.Comm) error {
		m := NewAIJ(c, n, n, petsc.ScatterDatatype)
		rlo, rhi := m.OwnedRows()
		for i := rlo; i < rhi; i++ {
			m.Set(i, i, 2)
			if i > 0 {
				m.Set(i, i-1, -1)
			}
			if i < n-1 {
				m.Set(i, i+1, -1)
			}
		}
		m.Assemble()
		x := petsc.NewVec(c, n)
		x.SetFromFunc(func(i int) float64 { return float64(i) })
		y := petsc.NewVec(c, n)
		m.Apply(x, y)
		lo, hi := y.Range()
		for i := lo; i < hi; i++ {
			want := 0.0
			if i == 0 {
				want = -1
			}
			if i == n-1 {
				want = float64(n) // 2*(n-1) - (n-2)
			}
			if got := y.Array()[i-lo]; math.Abs(got-want) > 1e-12 {
				return fmt.Errorf("y[%d] = %v, want %v", i, got, want)
			}
		}
		return nil
	})
}

func TestAIJValidation(t *testing.T) {
	runWorld(t, 2, mpi.Optimized(), func(c *mpi.Comm) error {
		mustPanic := func(name string, f func()) error {
			defer func() { recover() }()
			f()
			return fmt.Errorf("%s: expected panic", name)
		}
		m := NewAIJ(c, 4, 4, petsc.ScatterHandTuned)
		rlo, _ := m.OwnedRows()
		otherRow := (rlo + 2) % 4
		if err := mustPanic("foreign row", func() { m.Set(otherRow, 0, 1) }); err != nil {
			return err
		}
		if err := mustPanic("bad col", func() { m.Set(rlo, 7, 1) }); err != nil {
			return err
		}
		if err := mustPanic("apply before assemble", func() {
			m.Apply(petsc.NewVec(c, 4), petsc.NewVec(c, 4))
		}); err != nil {
			return err
		}
		m.Assemble()
		if err := mustPanic("set after assemble", func() { m.Set(rlo, 0, 1) }); err != nil {
			return err
		}
		if err := mustPanic("double assemble", func() { m.Assemble() }); err != nil {
			return err
		}
		if err := mustPanic("wrong vec size", func() {
			m.Apply(petsc.NewVec(c, 5), petsc.NewVec(c, 4))
		}); err != nil {
			return err
		}
		return nil
	})
}

// Package kselect implements the Floyd–Rivest SELECT algorithm for finding
// the k-th smallest element of a slice in expected linear time, plus the
// outlier-ratio computation the paper builds on top of it.
//
// The MPI_Allgatherv optimization (paper Section 4.2.1) must decide, from the
// communication-volume set that every rank already holds, whether a small
// subset of volumes falls far outside the range of the rest.  It computes
//
//	outlierRatio = kSelect(vols, N) / kSelect(vols, N*OUTLIER_FRACT)
//
// i.e. the ratio of the maximum volume to the volume at the OUTLIER_FRACT
// quantile, and compares it against a threshold.  Floyd–Rivest keeps that
// decision linear-time, so the adaptive algorithm selection never changes the
// asymptotic cost of the collective itself.
package kselect

import "math"

// Select returns the k-th smallest element (1-based, so k=1 is the minimum
// and k=len(v) the maximum) of v in expected O(len(v)) time using the
// Floyd–Rivest SELECT algorithm.  The input slice is reordered in place; the
// element with rank k ends up at index k-1, smaller elements before it and
// larger after it.  Select panics if k is out of range or v is empty.
func Select(v []int64, k int) int64 {
	if len(v) == 0 {
		panic("kselect: empty input")
	}
	if k < 1 || k > len(v) {
		panic("kselect: rank out of range")
	}
	floydRivest(v, 0, len(v)-1, k-1)
	return v[k-1]
}

// SelectCopy is like Select but leaves v untouched, operating on a copy.
func SelectCopy(v []int64, k int) int64 {
	w := make([]int64, len(v))
	copy(w, v)
	return Select(w, k)
}

// floydRivest places the element of rank k (0-based) of v[left:right+1] at
// index k, partitioning smaller elements to its left and larger to its right.
//
// This is the classical Algorithm 489 (SELECT) by Floyd and Rivest: on large
// ranges it first recursively selects inside a small sample around k to
// obtain tight partitioning pivots, giving n + min(k, n-k) + o(n) expected
// comparisons.
func floydRivest(v []int64, left, right, k int) {
	for right > left {
		if right-left > 600 {
			// Sample bounds chosen per the original paper: select
			// recursively from a sample of size s around position k so the
			// subsequent partition examines few elements outside v[k]'s
			// final position.
			n := float64(right - left + 1)
			i := float64(k - left + 1)
			z := math.Log(n)
			s := 0.5 * math.Exp(2*z/3)
			sign := 1.0
			if i < n/2 {
				sign = -1.0
			}
			sd := 0.5 * math.Sqrt(z*s*(n-s)/n) * sign
			newLeft := max(left, int(float64(k)-i*s/n+sd))
			newRight := min(right, int(float64(k)+(n-i)*s/n+sd))
			floydRivest(v, newLeft, newRight, k)
		}
		t := v[k]
		i, j := left, right
		v[left], v[k] = v[k], v[left]
		if v[right] > t {
			v[right], v[left] = v[left], v[right]
		}
		for i < j {
			v[i], v[j] = v[j], v[i]
			i++
			j--
			for v[i] < t {
				i++
			}
			for v[j] > t {
				j--
			}
		}
		if v[left] == t {
			v[left], v[j] = v[j], v[left]
		} else {
			j++
			v[j], v[right] = v[right], v[j]
		}
		if j <= k {
			left = j + 1
		}
		if k <= j {
			right = j - 1
		}
	}
}

// OutlierParams controls outlier detection over a communication-volume set.
type OutlierParams struct {
	// Fract is OUTLIER_FRACT from the paper: the fraction of processes that
	// must lie outside the bulk range to be considered outliers.  The ratio
	// compares the maximum volume against the volume at quantile 1-Fract.
	Fract float64
	// Threshold is the minimum outlierRatio at which the volume set is
	// declared nonuniform.
	Threshold float64
}

// DefaultOutlierParams matches the constants used in the paper's
// implementation sketch: up to 1/8 of processes may be outliers, and the
// bulk-to-max spread must exceed 16x to trigger the nonuniform algorithms.
var DefaultOutlierParams = OutlierParams{Fract: 0.125, Threshold: 16}

// OutlierRatio computes the ratio from paper equation (1):
//
//	k_select(vols, N) / k_select(vols, N*(1-Fract))
//
// The numerator is the largest communication volume, the denominator the
// volume bounding the "bulk" of the set once the outlier fraction is
// excluded.  A ratio near 1 means the volumes are uniform.  Zero-volume bulks
// with a nonzero maximum yield +Inf (maximally nonuniform); an all-zero set
// yields 1 (uniform: nothing to communicate).
func OutlierRatio(vols []int64, p OutlierParams) float64 {
	if len(vols) == 0 {
		return 1
	}
	n := len(vols)
	w := make([]int64, n)
	copy(w, vols)
	maxVol := Select(w, n)
	bulkRank := int(math.Ceil(float64(n) * (1 - p.Fract)))
	if bulkRank < 1 {
		bulkRank = 1
	}
	if bulkRank > n {
		bulkRank = n
	}
	bulk := Select(w, bulkRank)
	if maxVol == 0 {
		return 1
	}
	if bulk == 0 {
		return math.Inf(1)
	}
	return float64(maxVol) / float64(bulk)
}

// IsNonuniform reports whether the communication-volume set should be treated
// as nonuniform under params p, per the paper's detection rule.
func IsNonuniform(vols []int64, p OutlierParams) bool {
	return OutlierRatio(vols, p) >= p.Threshold
}

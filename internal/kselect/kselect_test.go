package kselect

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectSmall(t *testing.T) {
	cases := []struct {
		in   []int64
		k    int
		want int64
	}{
		{[]int64{5}, 1, 5},
		{[]int64{2, 1}, 1, 1},
		{[]int64{2, 1}, 2, 2},
		{[]int64{3, 1, 2}, 2, 2},
		{[]int64{9, 9, 9}, 2, 9},
		{[]int64{0, -5, 7, 3, 3}, 1, -5},
		{[]int64{0, -5, 7, 3, 3}, 5, 7},
		{[]int64{0, -5, 7, 3, 3}, 3, 3},
	}
	for _, c := range cases {
		if got := SelectCopy(c.in, c.k); got != c.want {
			t.Errorf("Select(%v, %d) = %d, want %d", c.in, c.k, got, c.want)
		}
	}
}

func TestSelectPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Select(nil, 1) },
		func() { Select([]int64{1}, 0) },
		func() { Select([]int64{1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSelectMatchesSortAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(rng.Intn(50) - 25) // duplicates likely
		}
		sorted := make([]int64, n)
		copy(sorted, v)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for k := 1; k <= n; k++ {
			if got := SelectCopy(v, k); got != sorted[k-1] {
				t.Fatalf("trial %d: Select(.., %d) = %d, want %d", trial, k, got, sorted[k-1])
			}
		}
	}
}

func TestSelectLargeTriggersSampling(t *testing.T) {
	// Exercise the right-bound > 600 recursive-sampling path.
	rng := rand.New(rand.NewSource(2))
	n := 20000
	v := make([]int64, n)
	for i := range v {
		v[i] = rng.Int63n(1 << 40)
	}
	sorted := make([]int64, n)
	copy(sorted, v)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, k := range []int{1, 2, 100, n / 4, n / 2, 3 * n / 4, n - 1, n} {
		if got := SelectCopy(v, k); got != sorted[k-1] {
			t.Fatalf("Select(.., %d) = %d, want %d", k, got, sorted[k-1])
		}
	}
}

func TestSelectPartitionsInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]int64, 1000)
	for i := range v {
		v[i] = rng.Int63n(1000)
	}
	k := 400
	got := Select(v, k)
	if v[k-1] != got {
		t.Fatalf("rank-k element not at index k-1")
	}
	for i := 0; i < k-1; i++ {
		if v[i] > got {
			t.Fatalf("v[%d]=%d > v[k-1]=%d", i, v[i], got)
		}
	}
	for i := k; i < len(v); i++ {
		if v[i] < got {
			t.Fatalf("v[%d]=%d < v[k-1]=%d", i, v[i], got)
		}
	}
}

func TestSelectQuick(t *testing.T) {
	f := func(raw []int16, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]int64, len(raw))
		for i, x := range raw {
			v[i] = int64(x)
		}
		k := 1 + int(kRaw)%len(v)
		sorted := make([]int64, len(v))
		copy(sorted, v)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return SelectCopy(v, k) == sorted[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOutlierRatioUniform(t *testing.T) {
	vols := []int64{100, 100, 100, 100, 100, 100, 100, 100}
	if r := OutlierRatio(vols, DefaultOutlierParams); r != 1 {
		t.Errorf("uniform set ratio = %v, want 1", r)
	}
	if IsNonuniform(vols, DefaultOutlierParams) {
		t.Error("uniform set flagged nonuniform")
	}
}

func TestOutlierRatioSingleLarge(t *testing.T) {
	// Paper's motivating case: one rank sends a large volume, the rest send
	// one double (8 bytes).
	vols := make([]int64, 64)
	for i := range vols {
		vols[i] = 8
	}
	vols[0] = 32 * 1024
	r := OutlierRatio(vols, DefaultOutlierParams)
	if r < 4000 || math.IsInf(r, 1) {
		t.Errorf("ratio = %v, want 32768/8 = 4096", r)
	}
	if !IsNonuniform(vols, DefaultOutlierParams) {
		t.Error("single-large set not flagged nonuniform")
	}
}

func TestOutlierRatioZeroCases(t *testing.T) {
	if r := OutlierRatio([]int64{0, 0, 0, 0}, DefaultOutlierParams); r != 1 {
		t.Errorf("all-zero ratio = %v, want 1", r)
	}
	r := OutlierRatio([]int64{0, 0, 0, 0, 0, 0, 0, 4096}, DefaultOutlierParams)
	if !math.IsInf(r, 1) {
		t.Errorf("zero-bulk ratio = %v, want +Inf", r)
	}
	if r := OutlierRatio(nil, DefaultOutlierParams); r != 1 {
		t.Errorf("empty ratio = %v, want 1", r)
	}
}

func TestOutlierRatioBelowThreshold(t *testing.T) {
	// Mild nonuniformity (2x spread) must not trigger the nonuniform path.
	vols := []int64{100, 120, 90, 110, 100, 95, 105, 200}
	if IsNonuniform(vols, DefaultOutlierParams) {
		t.Error("2x spread flagged nonuniform at 16x threshold")
	}
}

func TestOutlierFractTolerates(t *testing.T) {
	// With Fract=0.25, up to a quarter of ranks may be huge without the bulk
	// rank moving into the outlier region... the ratio still detects them
	// because the numerator is the max.  Verify the bulk quantile excludes
	// the outliers.
	vols := make([]int64, 16)
	for i := range vols {
		vols[i] = 10
	}
	vols[0], vols[1] = 1000, 900
	p := OutlierParams{Fract: 0.25, Threshold: 16}
	if got := OutlierRatio(vols, p); got != 100 {
		t.Errorf("ratio = %v, want 100 (max=1000 / bulk=10)", got)
	}
}

func BenchmarkSelectLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := make([]int64, 1<<16)
	for i := range v {
		v[i] = rng.Int63()
	}
	w := make([]int64, len(v))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(w, v)
		Select(w, len(w)/2)
	}
}

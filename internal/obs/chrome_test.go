package obs

import (
	"path/filepath"
	"testing"
)

func nestedSpans() []Span {
	return []Span{
		// rank 0 virtual: outer solve containing two inner phases, plus an
		// instant between them and a zero-duration span (also an instant).
		{Rank: 0, Kind: "solve", Start: 0, End: 10, Clock: ClockVirtual},
		{Rank: 0, Kind: "smooth", Start: 1, End: 4, Clock: ClockVirtual},
		{Rank: 0, Kind: "retransmit", Start: 4.5, End: 4.5, Clock: ClockVirtual},
		{Rank: 0, Kind: "restrict", Start: 5, End: 9, Clock: ClockVirtual},
		// Same-timestamp nesting: outer opens at 5 too (shorter inner already
		// present above; here inner closes exactly when outer closes).
		{Rank: 0, Kind: "pack", Start: 5, End: 9, Clock: ClockVirtual},
		// rank 1 wall lane.
		{Rank: 1, Kind: "tcp_send", Start: 0.5, End: 0.7, Clock: ClockWall, Peer: 0, Tag: 3, Bytes: 128},
		// global lane.
		{Rank: -1, Kind: "plan_compile", Start: 0.1, End: 0.2, Clock: ClockWall},
	}
}

func TestWriteValidateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteChromeTraceFile(path, nestedSpans(), 0); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChromeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(evs); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	counts := CountEvents(evs)
	for _, kind := range []string{"solve", "smooth", "restrict", "pack", "retransmit", "tcp_send", "plan_compile"} {
		if counts[kind] == 0 {
			t.Fatalf("kind %q missing from trace (counts %v)", kind, counts)
		}
	}
	// Metadata must name every populated lane.
	lanes := 0
	for i := range evs {
		if evs[i].Ph == "M" && evs[i].Name == "thread_name" {
			lanes++
		}
	}
	if lanes != 3 { // rank 0 virtual, rank 1 wall, global
		t.Fatalf("got %d lane metadata events, want 3", lanes)
	}
}

func TestValidateRejectsCorruptTraces(t *testing.T) {
	cases := []struct {
		name string
		evs  []chromeEvent
	}{
		{"unknown phase", []chromeEvent{{Name: "x", Ph: "Z", Ts: 0}}},
		{"empty name", []chromeEvent{{Name: "", Ph: "B", Ts: 0}}},
		{"backwards ts", []chromeEvent{
			{Name: "a", Ph: "B", Ts: 5}, {Name: "a", Ph: "E", Ts: 6},
			{Name: "b", Ph: "B", Ts: 2}, {Name: "b", Ph: "E", Ts: 3},
		}},
		{"unbalanced end", []chromeEvent{{Name: "a", Ph: "E", Ts: 0}}},
		{"unclosed begin", []chromeEvent{{Name: "a", Ph: "B", Ts: 0}}},
		{"mismatched nesting", []chromeEvent{
			{Name: "a", Ph: "B", Ts: 0}, {Name: "b", Ph: "B", Ts: 1},
			{Name: "a", Ph: "E", Ts: 2}, {Name: "b", Ph: "E", Ts: 3},
		}},
	}
	for _, tc := range cases {
		if err := ValidateChromeTrace(tc.evs); err == nil {
			t.Errorf("%s: validator accepted a corrupt trace", tc.name)
		}
	}
}

func TestMergeChromeTraceFiles(t *testing.T) {
	dir := t.TempDir()
	// Two rank files with different wall epochs: rank 0's wall span starts
	// at t=100s, rank 1's at t=200s.  After merge both must share one axis.
	r0 := []Span{
		{Rank: 0, Kind: "tcp_send", Start: 100.0, End: 100.5, Clock: ClockWall},
		{Rank: 0, Kind: "compute", Start: 1, End: 2, Clock: ClockVirtual},
	}
	r1 := []Span{
		{Rank: 1, Kind: "tcp_recv", Start: 200.25, End: 200.75, Clock: ClockWall},
	}
	p0 := filepath.Join(dir, "trace-rank0.json")
	p1 := filepath.Join(dir, "trace-rank1.json")
	if err := WriteChromeTraceFile(p0, r0, 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceFile(p1, r1, 0); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "merged.json")
	if err := MergeChromeTraceFiles(out, []string{p0, p1}); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChromeTraceFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(evs); err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}
	for i := range evs {
		e := &evs[i]
		switch {
		case e.Ph == "M":
		case e.Name == "tcp_send":
			if e.Pid != 0 || e.Ts < 100e6-1 || e.Ts > 100e6+1e6 {
				t.Fatalf("tcp_send not normalized: %+v", e)
			}
		case e.Name == "tcp_recv":
			if e.Pid != 1 {
				t.Fatalf("tcp_recv pid = %d, want 1", e.Pid)
			}
			// rank 1's earliest wall event aligns with the global earliest
			// (100s); its 0.5 s duration is preserved.
			if e.Ph == "B" && (e.Ts < 100e6-1 || e.Ts > 100e6+1) {
				t.Fatalf("tcp_recv begin ts %.0f not re-zeroed to shared wall axis", e.Ts)
			}
			if e.Ph == "E" && (e.Ts < 100.5e6-1 || e.Ts > 100.5e6+1) {
				t.Fatalf("tcp_recv end ts %.0f lost its within-file delta", e.Ts)
			}
		case e.Name == "compute":
			if e.Pid != 0 || e.Tid != 0 {
				t.Fatalf("virtual span moved lanes: %+v", e)
			}
			// Virtual lanes pass through untouched.
			if e.Ph == "B" && e.Ts != 1e6 {
				t.Fatalf("virtual ts rewritten: %v", e.Ts)
			}
		}
	}
}

// TestChromeExportShmLanes exports a mixed shm/tcp wall-clock trace and
// checks the shm spans land on the wall lane of their rank (tid =
// wallTidBase + rank), identity attrs included, and validate cleanly.
func TestChromeExportShmLanes(t *testing.T) {
	spans := []Span{
		{Rank: 0, Kind: "shm_send", Peer: 1, Bytes: 64, Start: 1.0, End: 1.001,
			Clock: ClockWall, Attrs: []Attr{{Key: "ctx", Val: "ab"}, {Key: "mseq", Val: "3"}}},
		{Rank: 1, Kind: "shm_recv", Peer: 0, Bytes: 64, Start: 1.002, End: 1.002, Clock: ClockWall},
		{Rank: 1, Kind: "tcp_send", Peer: 2, Bytes: 32, Start: 1.003, End: 1.004, Clock: ClockWall},
	}
	path := filepath.Join(t.TempDir(), "shm.json")
	if err := WriteChromeTraceFile(path, spans, 0); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChromeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(evs); err != nil {
		t.Fatalf("shm trace fails validation: %v", err)
	}
	found := 0
	for i := range evs {
		if evs[i].Ph == "M" {
			continue
		}
		switch evs[i].Name {
		case "shm_send":
			if evs[i].Tid != wallTidBase {
				t.Fatalf("shm_send on tid %d, want %d", evs[i].Tid, wallTidBase)
			}
			if evs[i].Ph == "B" && evs[i].Args["mseq"] != "3" {
				t.Fatalf("shm_send lost identity args: %v", evs[i].Args)
			}
			found++
		case "shm_recv", "tcp_send":
			if evs[i].Tid != wallTidBase+1 {
				t.Fatalf("%s on tid %d, want %d", evs[i].Name, evs[i].Tid, wallTidBase+1)
			}
			found++
		}
	}
	if found < 3 {
		t.Fatalf("only %d of 3 wall spans exported", found)
	}
}

// Package analyze stitches per-rank observability spans into a cross-rank
// causal model: every traced send carries a (src, dst, ctx, mseq) identity
// that pairs it with exactly one traced receive, and the paired events plus
// each rank's sequential timeline form a DAG whose longest path is the
// run's critical path.  On top of the DAG the package classifies wait
// states Scalasca-style — Late Sender (the receiver blocked because the
// message left late), Late Receiver (the sender stalled in rendezvous
// because the receiver wasn't draining), collective imbalance (waits inside
// a collective, where the blame is the slowest member, not the matched
// peer) — and walks wait chains backward to the root-cause rank: the rank
// that was computing while everyone else was waiting.
package analyze

import (
	"sort"
	"strconv"
	"strings"

	"nccd/internal/obs"
)

// Options configures an analysis pass.
type Options struct {
	// Wall marks a wall-clock (multi-process) trace: receive waits were
	// measured in wall seconds and are added to span durations, because a
	// wall-clock world's virtual clock cannot see a real blocked receive.
	Wall bool
	// Ranks is the world size; 0 infers it from the spans.
	Ranks int
	// Dropped is the total ring-buffer drop count across all ranks.  A
	// nonzero value is surfaced in the report: unmatched messages may be
	// ring casualties rather than genuinely lost traffic.
	Dropped int64
}

// node is one event on a rank's timeline.
type node struct {
	span obs.Span
	rank int
	lane int // index within the rank's lane
	id   int // global node id

	to, from   int // matching identity (world ranks); -1 when absent
	ctx        uint64
	mseq       uint64
	wait, rdvz float64

	match int    // node id of the matched counterpart, -1 when unmatched
	coll  string // enclosing collective container kind, "" outside any
}

// matchKey identifies one logical message.
type matchKey struct {
	src, dst int
	ctx      uint64
	mseq     uint64
}

// timelineKinds are the span kinds that form a rank's sequential timeline.
var timelineKinds = map[string]bool{
	"send": true, "recv": true, "compute": true, "skew": true,
}

// collectiveContainer reports whether kind is a collective container span
// (emitted around a whole collective or one of its hierarchy phases).
func collectiveContainer(kind string) bool {
	return kind == "allgatherv" || kind == "alltoallw" || strings.HasPrefix(kind, "hier_")
}

func attrVal(s *obs.Span, key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

func attrInt(s *obs.Span, key string) int {
	if v, ok := attrVal(s, key); ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return -1
}

func attrUint(s *obs.Span, key string, base int) uint64 {
	if v, ok := attrVal(s, key); ok {
		if n, err := strconv.ParseUint(v, base, 64); err == nil {
			return n
		}
	}
	return 0
}

func attrFloat(s *obs.Span, key string) float64 {
	if v, ok := attrVal(s, key); ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return 0
}

// graph is the stitched cross-rank event DAG.
type graph struct {
	nodes []node
	lanes [][]int // per-rank node ids, in emission (causal) order
	wall  bool
}

// durEff is a node's effective duration on the critical path.  Virtual
// traces fold the blocked wait into the recv span (the clock jumps to the
// arrival stamp); wall traces measure it out-of-band, so it is added here.
func (g *graph) durEff(n *node) float64 {
	d := n.span.End - n.span.Start
	if d < 0 {
		d = 0
	}
	if g.wall {
		d += n.wait
	}
	return d
}

// build filters spans into timeline nodes, assigns lanes, pairs sends with
// receives, and attributes nodes to their innermost collective container.
func build(spans []obs.Span, opts Options) *graph {
	ranks := opts.Ranks
	for i := range spans {
		if spans[i].Rank+1 > ranks {
			ranks = spans[i].Rank + 1
		}
	}
	g := &graph{lanes: make([][]int, ranks), wall: opts.Wall}

	// Collective containers per rank, for innermost-enclosing attribution.
	type container struct {
		kind       string
		start, end float64
	}
	containers := make([][]container, ranks)

	for i := range spans {
		s := &spans[i]
		if s.Clock != obs.ClockVirtual || s.Rank < 0 || s.Rank >= ranks {
			continue
		}
		if collectiveContainer(s.Kind) {
			containers[s.Rank] = append(containers[s.Rank],
				container{kind: s.Kind, start: s.Start, end: s.End})
			continue
		}
		if !timelineKinds[s.Kind] {
			continue
		}
		n := node{span: *s, rank: s.Rank, id: len(g.nodes), match: -1, to: -1, from: -1}
		switch s.Kind {
		case "send":
			n.to = attrInt(s, "to")
			n.ctx = attrUint(s, "ctx", 16)
			n.mseq = attrUint(s, "mseq", 10)
			n.rdvz = attrFloat(s, "rdvz")
		case "recv":
			n.from = attrInt(s, "from")
			n.ctx = attrUint(s, "ctx", 16)
			n.mseq = attrUint(s, "mseq", 10)
			n.wait = attrFloat(s, "wait")
		}
		n.lane = len(g.lanes[s.Rank])
		g.lanes[s.Rank] = append(g.lanes[s.Rank], n.id)
		g.nodes = append(g.nodes, n)
	}

	// Pair messages.  mseq is unique per (src, dst, ctx) stream, so a key
	// collision can only come from ring wrap losing one side; first match
	// wins and the leftovers count as unmatched.
	sends := make(map[matchKey]int)
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.span.Kind == "send" && n.mseq != 0 && n.to >= 0 {
			k := matchKey{src: n.rank, dst: n.to, ctx: n.ctx, mseq: n.mseq}
			if _, dup := sends[k]; !dup {
				sends[k] = n.id
			}
		}
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.span.Kind != "recv" || n.mseq == 0 || n.from < 0 {
			continue
		}
		k := matchKey{src: n.from, dst: n.rank, ctx: n.ctx, mseq: n.mseq}
		if sid, ok := sends[k]; ok && g.nodes[sid].match < 0 {
			g.nodes[sid].match = n.id
			n.match = sid
		}
	}

	// Innermost-container attribution: the container with the latest start
	// that still encloses the node.  Containers are emitted at collective
	// end, so sort them by start first.
	for r := range containers {
		cs := containers[r]
		sort.Slice(cs, func(i, j int) bool { return cs[i].start < cs[j].start })
		for _, id := range g.lanes[r] {
			n := &g.nodes[id]
			// Binary search: first container starting after the node, then
			// scan left for one that encloses it.
			hi := sort.Search(len(cs), func(i int) bool { return cs[i].start > n.span.Start })
			for j := hi - 1; j >= 0; j-- {
				if cs[j].end >= n.span.End {
					n.coll = cs[j].kind
					break
				}
			}
		}
	}
	return g
}

// criticalPath computes the longest effective-duration path through the
// DAG.  Edges: lane order (an event depends on its rank's previous event)
// and message matching (a receive depends on its send).  Returns the cp
// value per node and the terminal node id.
func (g *graph) criticalPath() (cp []float64, terminal int) {
	n := len(g.nodes)
	cp = make([]float64, n)
	state := make([]uint8, n) // 0 unvisited, 1 in progress, 2 done

	// Iterative DFS; a back edge (possible only if identity collisions
	// mis-paired a message) drops the match edge rather than looping.
	var stack []int
	for root := 0; root < n; root++ {
		if state[root] == 2 {
			continue
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			nd := &g.nodes[id]
			if state[id] == 2 {
				stack = stack[:len(stack)-1]
				continue
			}
			state[id] = 1
			prev, dep := -1, -1
			if nd.lane > 0 {
				prev = g.lanes[nd.rank][nd.lane-1]
			}
			if nd.span.Kind == "recv" && nd.match >= 0 {
				dep = nd.match
			}
			ready := true
			for _, p := range []int{prev, dep} {
				if p < 0 || state[p] == 2 {
					continue
				}
				if state[p] == 1 {
					// Cycle: sever the match edge (lane edges cannot cycle).
					if p == dep {
						nd.match = -1
						continue
					}
					continue
				}
				stack = append(stack, p)
				ready = false
			}
			if !ready {
				continue
			}
			best := 0.0
			if prev >= 0 && cp[prev] > best {
				best = cp[prev]
			}
			if dep >= 0 && nd.match >= 0 && cp[dep] > best {
				best = cp[dep]
			}
			cp[id] = best + g.durEff(nd)
			state[id] = 2
			stack = stack[:len(stack)-1]
		}
	}
	terminal = -1
	for id := range g.nodes {
		if terminal < 0 || cp[id] > cp[terminal] {
			terminal = id
		}
	}
	return cp, terminal
}

// walkPath backtracks the critical path from terminal, attributing each
// node's effective duration to its rank and kind.
func (g *graph) walkPath(cp []float64, terminal int) (perRank []float64, perKind map[string]float64, hops int) {
	perRank = make([]float64, len(g.lanes))
	perKind = make(map[string]float64)
	const eps = 1e-12
	for id := terminal; id >= 0; {
		nd := &g.nodes[id]
		d := g.durEff(nd)
		perRank[nd.rank] += d
		perKind[nd.span.Kind] += d
		hops++
		prev, dep := -1, -1
		if nd.lane > 0 {
			prev = g.lanes[nd.rank][nd.lane-1]
		}
		if nd.span.Kind == "recv" && nd.match >= 0 {
			dep = nd.match
		}
		next := -1
		want := cp[id] - d
		if want <= eps {
			break
		}
		if prev >= 0 && cp[prev] >= want-eps {
			next = prev
		}
		if dep >= 0 && (next < 0 || cp[dep] > cp[next]) && cp[dep] >= want-eps {
			next = dep
		}
		id = next
	}
	return perRank, perKind, hops
}

// rootBlame walks a waiting receive's causal chain back to the rank that
// was genuinely busy.  Direct blame (the matched sender) dilutes under
// multi-hop collectives — a recursive-doubling relay waits on its own
// predecessor — so the walk hops: from the waiting receive to its sender,
// backward over the sender's lane accumulating busy time; if the sender was
// itself waiting on a receive before covering the wait, the walk follows
// that receive's sender instead.  Bounded by maxBlameHops.
const maxBlameHops = 64

func (g *graph) rootBlame(recvID int) int {
	cur := recvID
	for hop := 0; hop < maxBlameHops; hop++ {
		nd := &g.nodes[cur]
		sid := nd.match
		if sid < 0 {
			if nd.from >= 0 {
				return nd.from
			}
			return nd.rank
		}
		sender := &g.nodes[sid]
		need := nd.wait
		busy := 0.0
		hopped := false
		for j := sender.lane - 1; j >= 0; j-- {
			pn := &g.nodes[g.lanes[sender.rank][j]]
			if pn.span.Kind == "recv" && pn.wait > 0 && busy < need {
				cur = pn.id
				hopped = true
				break
			}
			busy += g.durEff(pn)
			if busy >= need {
				return sender.rank
			}
		}
		if !hopped {
			return sender.rank
		}
	}
	return g.nodes[cur].rank
}

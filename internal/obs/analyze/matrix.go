package analyze

import (
	"math"
	"sort"

	"nccd/internal/obs"
)

// Matrix is a per-(source, destination) communication profile accumulated
// from spans: payload bytes and message counts from send spans,
// retransmissions from retransmit instants, receiver-blocked seconds from
// recv wait attributes.
type Matrix struct {
	N       int         `json:"n"`
	Bytes   [][]int64   `json:"bytes"`
	Msgs    [][]int64   `json:"msgs"`
	Retrans [][]int64   `json:"retrans"`
	WaitSec [][]float64 `json:"wait_sec"`
}

func newMatrix(n int) *Matrix {
	m := &Matrix{N: n,
		Bytes: make([][]int64, n), Msgs: make([][]int64, n),
		Retrans: make([][]int64, n), WaitSec: make([][]float64, n)}
	for i := 0; i < n; i++ {
		m.Bytes[i] = make([]int64, n)
		m.Msgs[i] = make([]int64, n)
		m.Retrans[i] = make([]int64, n)
		m.WaitSec[i] = make([]float64, n)
	}
	return m
}

func (m *Matrix) in(src, dst int) bool {
	return src >= 0 && src < m.N && dst >= 0 && dst < m.N
}

// TotalBytes sums every cell.
func (m *Matrix) TotalBytes() int64 {
	var t int64
	for _, row := range m.Bytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// MatrixStats are the nonuniformity statistics of a byte matrix, computed
// over the nonzero off-diagonal cells — the paper's measure of how far a
// communication pattern sits from the uniform all-to-all the classic
// algorithms assume.
type MatrixStats struct {
	Pairs    int     `json:"pairs"`     // nonzero off-diagonal cells
	MaxBytes int64   `json:"max_bytes"` // heaviest pair
	MeanB    float64 `json:"mean_bytes"`
	Ratio    float64 `json:"ratio"` // max/mean; 1 = perfectly uniform
	Gini     float64 `json:"gini"`  // 0 = uniform, →1 = one pair dominates
}

// Stats computes the nonuniformity statistics of m's byte matrix.
func (m *Matrix) Stats() MatrixStats {
	var cells []float64
	var max int64
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if i == j || m.Bytes[i][j] == 0 {
				continue
			}
			cells = append(cells, float64(m.Bytes[i][j]))
			if m.Bytes[i][j] > max {
				max = m.Bytes[i][j]
			}
		}
	}
	st := MatrixStats{Pairs: len(cells), MaxBytes: max}
	if len(cells) == 0 {
		return st
	}
	sum := 0.0
	for _, v := range cells {
		sum += v
	}
	st.MeanB = sum / float64(len(cells))
	if st.MeanB > 0 {
		st.Ratio = float64(max) / st.MeanB
	}
	// Gini via the sorted-rank identity: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n.
	sort.Float64s(cells)
	n := float64(len(cells))
	var ranked float64
	for i, v := range cells {
		ranked += float64(i+1) * v
	}
	st.Gini = 2*ranked/(n*sum) - (n+1)/n
	if st.Gini < 0 {
		st.Gini = 0
	}
	return st
}

// CollProfile is one collective kind's aggregate communication profile:
// how many container instances ran, the traffic sent from inside them, and
// the nonuniformity of that traffic.
type CollProfile struct {
	Instances int         `json:"instances"`
	Msgs      int64       `json:"msgs"`
	Bytes     int64       `json:"bytes"`
	WaitSec   float64     `json:"wait_sec"` // receive waits inside the container
	Stats     MatrixStats `json:"stats"`
}

// TransportStats split a wall-clock run's traffic by transport, from the
// ClockWall spans the transports emit: the shm/tcp byte split is the
// hierarchy dividend (intra-node traffic that never touched a socket).
type TransportStats struct {
	TCPMsgs     int64 `json:"tcp_msgs"`
	TCPBytes    int64 `json:"tcp_bytes"`
	ShmMsgs     int64 `json:"shm_msgs"`
	ShmBytes    int64 `json:"shm_bytes"`
	Retransmits int64 `json:"retransmits"`
}

// buildMatrix accumulates the full-run matrix, per-collective profiles and
// the transport split in one pass over the graph plus the raw spans.
func buildMatrix(g *graph, spans []obs.Span) (*Matrix, map[string]*CollProfile, TransportStats) {
	m := newMatrix(len(g.lanes))
	per := make(map[string]*CollProfile)
	coll := func(kind string) *CollProfile {
		p := per[kind]
		if p == nil {
			p = &CollProfile{}
			per[kind] = p
		}
		return p
	}
	perM := make(map[string]*Matrix)
	collM := func(kind string) *Matrix {
		pm := perM[kind]
		if pm == nil {
			pm = newMatrix(m.N)
			perM[kind] = pm
		}
		return pm
	}

	for i := range g.nodes {
		n := &g.nodes[i]
		switch n.span.Kind {
		case "send":
			if !m.in(n.rank, n.to) {
				continue
			}
			m.Bytes[n.rank][n.to] += n.span.Bytes
			m.Msgs[n.rank][n.to]++
			if n.coll != "" {
				p := coll(n.coll)
				p.Msgs++
				p.Bytes += n.span.Bytes
				pm := collM(n.coll)
				pm.Bytes[n.rank][n.to] += n.span.Bytes
				pm.Msgs[n.rank][n.to]++
			}
		case "recv":
			if n.wait <= 0 || !m.in(n.from, n.rank) {
				continue
			}
			m.WaitSec[n.from][n.rank] += n.wait
			if n.coll != "" {
				coll(n.coll).WaitSec += n.wait
			}
		}
	}

	var ts TransportStats
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case "retransmit", "tcp_retransmit":
			ts.Retransmits++
			if s.Kind == "retransmit" && m.in(s.Rank, s.Peer) {
				m.Retrans[s.Rank][s.Peer]++
			}
			if s.Kind == "tcp_retransmit" && m.in(s.Rank, s.Peer) {
				m.Retrans[s.Rank][s.Peer]++
			}
		case "tcp_send":
			ts.TCPMsgs++
			ts.TCPBytes += s.Bytes
		case "shm_send":
			ts.ShmMsgs++
			ts.ShmBytes += s.Bytes
		case "allgatherv", "alltoallw":
			coll(s.Kind).Instances++
		default:
			if s.Clock == obs.ClockVirtual && collectiveContainer(s.Kind) {
				coll(s.Kind).Instances++
			}
		}
	}
	for kind, p := range per {
		if pm := perM[kind]; pm != nil {
			p.Stats = pm.Stats()
		}
	}
	return m, per, ts
}

// round3 trims a float for report rendering.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

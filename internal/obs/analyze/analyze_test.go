package analyze_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"nccd/internal/mpi"
	"nccd/internal/obs"
	"nccd/internal/obs/analyze"
	"nccd/internal/simnet"
)

func span(rank int, kind string, peer, tag int, bytes int64, start, end float64, attrs ...obs.Attr) obs.Span {
	return obs.Span{Rank: rank, Kind: kind, Peer: peer, Tag: tag, Bytes: bytes,
		Start: start, End: end, Clock: obs.ClockVirtual, Attrs: attrs}
}

// TestSyntheticMatchAndCriticalPath hand-builds a two-rank trace: rank 0
// computes 1s then sends; rank 1 posts its receive immediately and waits
// the full second.  The message must match, the wait must classify as
// Late Sender blamed on rank 0, and the critical path must run through
// rank 0's compute into rank 1's receive.
func TestSyntheticMatchAndCriticalPath(t *testing.T) {
	spans := []obs.Span{
		span(0, "compute", -1, 0, 0, 0, 1.0),
		span(0, "send", 1, 7, 100, 1.0, 1.1,
			obs.Attr{Key: "to", Val: "1"}, obs.Attr{Key: "ctx", Val: "ab"},
			obs.Attr{Key: "mseq", Val: "1"}),
		span(1, "recv", 0, 7, 100, 0.0, 1.2,
			obs.Attr{Key: "from", Val: "0"}, obs.Attr{Key: "ctx", Val: "ab"},
			obs.Attr{Key: "mseq", Val: "1"}, obs.Attr{Key: "wait", Val: "1.1"}),
	}
	rep := analyze.Analyze(spans, analyze.Options{})
	if rep.Ranks != 2 {
		t.Fatalf("ranks = %d", rep.Ranks)
	}
	if rep.Sends != 1 || rep.Recvs != 1 || rep.Matched != 1 || rep.MatchRate != 1 {
		t.Fatalf("matching: %d/%d sends matched, %d recvs", rep.Matched, rep.Sends, rep.Recvs)
	}
	if rep.Matrix.Bytes[0][1] != 100 || rep.Matrix.Msgs[0][1] != 1 {
		t.Fatalf("matrix cell [0][1] = %d B / %d msgs", rep.Matrix.Bytes[0][1], rep.Matrix.Msgs[0][1])
	}
	if math.Abs(rep.Wait.LateSenderSec-1.1) > 1e-9 || math.Abs(rep.Wait.RootBlameSec[0]-1.1) > 1e-9 {
		t.Fatalf("wait: late-sender %g, root blame %v", rep.Wait.LateSenderSec, rep.Wait.RootBlameSec)
	}
	// Critical path: rank0 compute (1.0) + send (0.1) + rank1 recv (1.2,
	// its whole duration — virtual recv spans fold the wait in).
	if math.Abs(rep.CritPath.LengthSec-2.3) > 1e-9 {
		t.Fatalf("critical path %g, want 2.3", rep.CritPath.LengthSec)
	}
	if rep.CritPath.PerRankSec[0] <= 0 || rep.CritPath.PerRankSec[1] <= 0 {
		t.Fatalf("per-rank attribution %v", rep.CritPath.PerRankSec)
	}

	// The report must survive a JSON round trip (it is served by nccdd).
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(rep); err != nil {
		t.Fatal(err)
	}
	rep.Render(&buf)
}

// TestUnmatchedSendDetected drops the recv side and expects the analyzer
// to flag the send as unmatched.
func TestUnmatchedSendDetected(t *testing.T) {
	spans := []obs.Span{
		span(0, "send", 1, 7, 64, 0, 0.1,
			obs.Attr{Key: "to", Val: "1"}, obs.Attr{Key: "ctx", Val: "ab"},
			obs.Attr{Key: "mseq", Val: "1"}),
	}
	rep := analyze.Analyze(spans, analyze.Options{Ranks: 2})
	if rep.UnmatchedSends != 1 || rep.Matched != 0 {
		t.Fatalf("unmatched sends %d, matched %d", rep.UnmatchedSends, rep.Matched)
	}
}

// TestCollectiveImbalanceAttribution puts a waiting recv inside an
// allgatherv container span; its wait must land in the collective
// imbalance bucket, not Late Sender.
func TestCollectiveImbalanceAttribution(t *testing.T) {
	spans := []obs.Span{
		span(1, "recv", 0, 3, 10, 0.0, 0.5,
			obs.Attr{Key: "from", Val: "0"}, obs.Attr{Key: "ctx", Val: "1"},
			obs.Attr{Key: "mseq", Val: "1"}, obs.Attr{Key: "wait", Val: "0.5"}),
		span(1, "allgatherv", -1, 0, 0, 0.0, 0.6),
	}
	rep := analyze.Analyze(spans, analyze.Options{Ranks: 2})
	if rep.Wait.CollImbalanceSec["allgatherv"] != 0.5 || rep.Wait.LateSenderSec != 0 {
		t.Fatalf("imbalance %v, late-sender %g",
			rep.Wait.CollImbalanceSec, rep.Wait.LateSenderSec)
	}
}

// TestLateSenderRootCause runs a real four-rank virtual world where rank 2
// is four times slower than the others, with ring exchanges after each
// compute block.  At least 80% of the measured wait time must be blamed on
// rank 2 by the root-cause walk — the acceptance bar for the wait-state
// analysis: direct blame would spread over the ring neighbors.
func TestLateSenderRootCause(t *testing.T) {
	const n = 4
	cl := simnet.Uniform(n, simnet.IBDDR())
	cl.Speed = []float64{1, 1, 0.25, 1}
	w := mpi.NewWorld(cl, mpi.Config{})
	w.EnableTrace()
	err := w.Run(func(c *mpi.Comm) error {
		me := c.Rank()
		buf := make([]byte, 512)
		for round := 0; round < 5; round++ {
			c.Compute(0.01)
			right := (me + 1) % n
			left := (me + n - 1) % n
			c.Sendrecv(right, 7, buf, left, 7)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze.Analyze(w.Tracer().Spans(), analyze.Options{Ranks: n})
	if rep.Sends == 0 || rep.MatchRate != 1 {
		t.Fatalf("matching: %d sends, rate %g (unmatched %d)",
			rep.Sends, rep.MatchRate, rep.UnmatchedSends)
	}
	total := rep.Wait.TotalSec
	if total <= 0 {
		t.Fatal("no wait time measured")
	}
	blamed := rep.Wait.RootBlameSec[2]
	if blamed < 0.8*total {
		t.Fatalf("root blame on slow rank 2: %.4gs of %.4gs (%.0f%%), want >= 80%%",
			blamed, total, 100*blamed/total)
	}
	// The slow rank must also dominate the critical path.
	if rep.CritPath.PerRankSec[2] < rep.CritPath.PerRankSec[0] {
		t.Fatalf("critical path per-rank %v: slow rank not dominant", rep.CritPath.PerRankSec)
	}
}

// TestNonuniformStats checks ratio and Gini on a known matrix: one pair
// carrying 4x the bytes of three others.
func TestNonuniformStats(t *testing.T) {
	var spans []obs.Span
	add := func(src, dst int, b int64, mseq string) {
		spans = append(spans, span(src, "send", dst, 1, b, 0, 0.01,
			obs.Attr{Key: "to", Val: []string{"0", "1", "2", "3"}[dst]},
			obs.Attr{Key: "ctx", Val: "1"}, obs.Attr{Key: "mseq", Val: mseq}))
	}
	add(0, 1, 400, "1")
	add(1, 2, 100, "1")
	add(2, 3, 100, "1")
	add(3, 0, 100, "1")
	rep := analyze.Analyze(spans, analyze.Options{Ranks: 4})
	st := rep.MatrixStats
	if st.Pairs != 4 || st.MaxBytes != 400 {
		t.Fatalf("pairs %d max %d", st.Pairs, st.MaxBytes)
	}
	want := 400.0 / 175.0
	if math.Abs(st.Ratio-want) > 1e-9 {
		t.Fatalf("ratio %g want %g", st.Ratio, want)
	}
	if st.Gini <= 0 || st.Gini >= 1 {
		t.Fatalf("gini %g out of range", st.Gini)
	}
}

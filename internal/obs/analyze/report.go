package analyze

import (
	"fmt"
	"io"
	"sort"

	"nccd/internal/obs"
)

// WaitStats aggregate the run's blocked time by wait-state class and by
// blamed rank.  Direct blame charges the matched sender; root blame follows
// wait chains to the rank that was actually busy (see rootBlame), which is
// the number to read when one slow rank drags a collective.
type WaitStats struct {
	TotalSec         float64            `json:"total_sec"`
	LateSenderSec    float64            `json:"late_sender_sec"`
	LateRecvSec      float64            `json:"late_receiver_sec"`
	CollImbalanceSec map[string]float64 `json:"coll_imbalance_sec"`
	DirectBlameSec   []float64          `json:"direct_blame_sec"`
	RootBlameSec     []float64          `json:"root_blame_sec"`
}

// CPStats describe the critical path: the longest causal chain of
// effective durations through the cross-rank DAG.
type CPStats struct {
	LengthSec  float64            `json:"length_sec"`
	Nodes      int                `json:"nodes"`
	PerRankSec []float64          `json:"per_rank_sec"`
	PerKindSec map[string]float64 `json:"per_kind_sec"`
}

// Report is a full cross-rank analysis.
type Report struct {
	Ranks   int   `json:"ranks"`
	Wall    bool  `json:"wall"`
	Dropped int64 `json:"dropped"`

	Sends          int     `json:"sends"`
	Recvs          int     `json:"recvs"`
	Matched        int     `json:"matched"`
	UnmatchedSends int     `json:"unmatched_sends"`
	UnmatchedRecvs int     `json:"unmatched_recvs"`
	MatchRate      float64 `json:"match_rate"` // matched / sends

	Matrix        *Matrix                 `json:"matrix"`
	MatrixStats   MatrixStats             `json:"matrix_stats"`
	PerCollective map[string]*CollProfile `json:"per_collective"`
	Transport     TransportStats          `json:"transport"`
	Wait          WaitStats               `json:"wait"`
	CritPath      CPStats                 `json:"critical_path"`
}

// Analyze runs the full pass over a merged span set.
func Analyze(spans []obs.Span, opts Options) *Report {
	g := build(spans, opts)
	rep := &Report{Ranks: len(g.lanes), Wall: opts.Wall, Dropped: opts.Dropped}

	for i := range g.nodes {
		n := &g.nodes[i]
		switch n.span.Kind {
		case "send":
			rep.Sends++
			if n.match < 0 {
				rep.UnmatchedSends++
			} else {
				rep.Matched++
			}
		case "recv":
			rep.Recvs++
			if n.match < 0 {
				rep.UnmatchedRecvs++
			}
		}
	}
	if rep.Sends > 0 {
		rep.MatchRate = float64(rep.Matched) / float64(rep.Sends)
	}

	rep.Matrix, rep.PerCollective, rep.Transport = buildMatrix(g, spans)
	rep.MatrixStats = rep.Matrix.Stats()

	// Wait states.
	ws := WaitStats{
		CollImbalanceSec: make(map[string]float64),
		DirectBlameSec:   make([]float64, rep.Ranks),
		RootBlameSec:     make([]float64, rep.Ranks),
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.span.Kind == "recv" && n.wait > 0 {
			ws.TotalSec += n.wait
			if n.coll != "" {
				ws.CollImbalanceSec[n.coll] += n.wait
			} else {
				ws.LateSenderSec += n.wait
			}
			if n.from >= 0 && n.from < rep.Ranks {
				ws.DirectBlameSec[n.from] += n.wait
			}
			if r := g.rootBlame(n.id); r >= 0 && r < rep.Ranks {
				ws.RootBlameSec[r] += n.wait
			}
		}
		if n.span.Kind == "send" && n.rdvz > 0 {
			ws.TotalSec += n.rdvz
			ws.LateRecvSec += n.rdvz
			if n.to >= 0 && n.to < rep.Ranks {
				ws.DirectBlameSec[n.to] += n.rdvz
				ws.RootBlameSec[n.to] += n.rdvz
			}
		}
	}
	rep.Wait = ws

	cp, terminal := g.criticalPath()
	if terminal >= 0 {
		perRank, perKind, hops := g.walkPath(cp, terminal)
		rep.CritPath = CPStats{LengthSec: cp[terminal], Nodes: hops,
			PerRankSec: perRank, PerKindSec: perKind}
	}
	return rep
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	clock := "virtual"
	if r.Wall {
		clock = "wall"
	}
	fmt.Fprintf(w, "cross-rank analysis: %d ranks, %s clock\n", r.Ranks, clock)
	fmt.Fprintf(w, "  messages: %d sends, %d recvs, %d matched (%.1f%%), %d unmatched sends, %d unmatched recvs\n",
		r.Sends, r.Recvs, r.Matched, 100*r.MatchRate, r.UnmatchedSends, r.UnmatchedRecvs)
	if r.Dropped > 0 {
		fmt.Fprintf(w, "  WARNING: %d spans dropped by ring buffers; unmatched counts are not trustworthy\n", r.Dropped)
	}

	st := r.MatrixStats
	fmt.Fprintf(w, "  traffic: %d bytes over %d pairs, nonuniformity ratio %.2f (max/mean), Gini %.3f\n",
		r.Matrix.TotalBytes(), st.Pairs, st.Ratio, st.Gini)
	if r.Transport.TCPMsgs+r.Transport.ShmMsgs > 0 {
		fmt.Fprintf(w, "  transport: tcp %d msgs / %d B, shm %d msgs / %d B, %d retransmits\n",
			r.Transport.TCPMsgs, r.Transport.TCPBytes,
			r.Transport.ShmMsgs, r.Transport.ShmBytes, r.Transport.Retransmits)
	}

	if len(r.PerCollective) > 0 {
		kinds := make([]string, 0, len(r.PerCollective))
		for k := range r.PerCollective {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "  collectives:\n")
		for _, k := range kinds {
			p := r.PerCollective[k]
			fmt.Fprintf(w, "    %-20s %4d inst, %6d msgs, %10d B, ratio %.2f, gini %.3f, wait %.4gs\n",
				k, p.Instances, p.Msgs, p.Bytes, p.Stats.Ratio, p.Stats.Gini, round3(p.WaitSec))
		}
	}

	ws := r.Wait
	fmt.Fprintf(w, "  wait states: total %.4gs — late-sender %.4gs, late-receiver %.4gs",
		round3(ws.TotalSec), round3(ws.LateSenderSec), round3(ws.LateRecvSec))
	var collW float64
	for _, v := range ws.CollImbalanceSec {
		collW += v
	}
	fmt.Fprintf(w, ", collective-imbalance %.4gs\n", round3(collW))
	if ws.TotalSec > 0 {
		fmt.Fprintf(w, "  blame (root-cause walk):")
		for rank, v := range ws.RootBlameSec {
			if v > 0 {
				fmt.Fprintf(w, " r%d=%.4gs(%.0f%%)", rank, round3(v), 100*v/ws.TotalSec)
			}
		}
		fmt.Fprintln(w)
	}

	cp := r.CritPath
	fmt.Fprintf(w, "  critical path: %.4gs over %d events\n", round3(cp.LengthSec), cp.Nodes)
	if cp.LengthSec > 0 {
		fmt.Fprintf(w, "    by rank:")
		for rank, v := range cp.PerRankSec {
			if v > 0 {
				fmt.Fprintf(w, " r%d=%.0f%%", rank, 100*v/cp.LengthSec)
			}
		}
		fmt.Fprintln(w)
		kinds := make([]string, 0, len(cp.PerKindSec))
		for k := range cp.PerKindSec {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "    by kind:")
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%.0f%%", k, 100*cp.PerKindSec[k]/cp.LengthSec)
		}
		fmt.Fprintln(w)
	}

	// Small worlds get the full matrix.
	if r.Matrix.N <= 16 && r.Matrix.TotalBytes() > 0 {
		fmt.Fprintf(w, "  byte matrix (rows=src):\n")
		for i := 0; i < r.Matrix.N; i++ {
			fmt.Fprintf(w, "    r%-2d", i)
			for j := 0; j < r.Matrix.N; j++ {
				fmt.Fprintf(w, " %10d", r.Matrix.Bytes[i][j])
			}
			fmt.Fprintln(w)
		}
	}
}

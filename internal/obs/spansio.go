package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// Raw span persistence.  The Chrome export (chrome.go) is a lossy
// projection for a human viewer; the cross-rank analyzer needs the spans
// themselves — attributes included — so each process dumps its tracer
// verbatim and the analyzing process stitches the per-rank files back
// together.  The format is one JSON document, spans in ring order
// (per-lane oldest-first), with the drop count preserved so the analyzer
// can refuse to claim completeness over a truncated trace.

// SpanFile is the on-disk form of one process's trace.
type SpanFile struct {
	Dropped int64  `json:"dropped"`
	Spans   []Span `json:"spans"`
}

// WriteSpansFile writes the tracer's recorded spans and drop count to path.
func WriteSpansFile(path string, t *Tracer) error {
	return WriteSpans(path, t.Spans(), t.Dropped())
}

// WriteSpans writes an explicit span set to path.
func WriteSpans(path string, spans []Span, dropped int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(SpanFile{Dropped: dropped, Spans: spans}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSpansFile loads a span file written by WriteSpansFile.
func ReadSpansFile(path string) (SpanFile, error) {
	var sf SpanFile
	b, err := os.ReadFile(path)
	if err != nil {
		return sf, err
	}
	if err := json.Unmarshal(b, &sf); err != nil {
		return sf, fmt.Errorf("obs: %s: %w", path, err)
	}
	return sf, nil
}

package obs

import (
	"encoding/json"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: cheap always-on counters and fixed-bucket
// histograms, plus snapshot functions for subsystems that already keep
// their own typed counters (the plan cache, the TCP endpoint).  Counters
// and histograms are single atomic adds on the hot path — cheap enough to
// stay unconditional — while snapshot functions are evaluated only when a
// snapshot is taken (the nccdd debug endpoint, a test, a report).

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// histBuckets is the fixed bucket count: bucket i counts observations v
// with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).  63 buckets cover the
// whole int64 range, so no observation is ever out of bounds.
const histBuckets = 63

// Histogram is a fixed power-of-two-bucket histogram of int64 observations
// (message sizes, pack volumes).  Observe is two atomic adds plus one
// bucket add.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one observation.  Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Smallest i with 2^i >= v.
	i := 0
	for vv := v - 1; vv > 0; vv >>= 1 {
		i++
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// BucketCount is one non-empty histogram bucket: N observations with value
// <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time view of a histogram, with empty
// buckets omitted.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: int64(1) << uint(i), N: n})
		}
	}
	return s
}

// Registry names and snapshots a process's metrics.  Counter and Histogram
// are get-or-create, so hot paths grab their metric once at package init
// and pay only the atomic add per operation; the map is never touched on
// the hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	funcs    map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() any),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs (or replaces) a snapshot function evaluated at
// Snapshot time.  The returned value must be JSON-marshalable.
func (r *Registry) RegisterFunc(name string, f func() any) {
	r.mu.Lock()
	r.funcs[name] = f
	r.mu.Unlock()
}

// Unregister removes a snapshot function.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.funcs, name)
	r.mu.Unlock()
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.hists)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns every metric's current value keyed by name: counters as
// int64, histograms as HistogramSnapshot, snapshot functions evaluated.
// The result marshals directly as the debug endpoint's JSON body.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.RUnlock()

	out := make(map[string]any, len(counters)+len(hists)+len(funcs))
	for n, c := range counters {
		out[n] = c.Load()
	}
	for n, h := range hists {
		out[n] = h.Snapshot()
	}
	for n, f := range funcs {
		out[n] = f()
	}
	addRankTotals(out)
	return out
}

// rankMetric splits a per-rank metric name ("transport.tcp.rank3.frames")
// into its base form with the rank component removed; jobMetric does the
// same for the per-job component of multi-tenant service metrics
// ("mpi.comm_matrix.job7.total").
var (
	rankMetric = regexp.MustCompile(`^(.*)\.rank\d+($|\..*)`)
	jobMetric  = regexp.MustCompile(`^(.*)\.job\d+($|\..*)`)
)

// addRankTotals folds per-rank metric families into aggregate entries: for
// every family of names differing only in a ".rankN" component, a
// "<base>.total" entry is added holding the field-wise sum.  Raw per-rank
// entries are kept; the totals ride alongside so a dashboard reading a
// many-rank snapshot does not have to know the world size.  Values are
// JSON-round-tripped before summing, so typed snapshot-function results
// aggregate the same way they marshal.
//
// Per-job families fold the same way, in two layers: the rank pass turns
// "mpi.comm_matrix.job7.rank1" into "mpi.comm_matrix.job7.total" (sum over
// the job's ranks), and the job pass then folds the per-job totals across
// jobs into "mpi.comm_matrix.total" — so one snapshot answers both "how
// much did job 7 move" and "how much did the service move".
func addRankTotals(out map[string]any) {
	foldFamilies(out, rankMetric)
	foldFamilies(out, jobMetric)
}

// foldFamilies adds a "<base>.total" sum for every family of names
// differing only in the component matched by re.  Existing entries are
// never overwritten.
func foldFamilies(out map[string]any, re *regexp.Regexp) {
	groups := make(map[string][]any)
	for name, v := range out {
		m := re.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		base := m[1] + m[2] + ".total"
		// Collapse a doubled ".total.total" when the matched component was
		// already followed by ".total" (the job pass over rank totals).
		base = strings.ReplaceAll(base, ".total.total", ".total")
		groups[base] = append(groups[base], v)
	}
	for base, vals := range groups {
		if _, taken := out[base]; taken || len(vals) == 0 {
			continue
		}
		total := toJSON(vals[0])
		for _, v := range vals[1:] {
			total = sumJSON(total, toJSON(v))
		}
		out[base] = total
	}
}

// toJSON normalizes a value to the generic JSON shape (map[string]any,
// []any, float64, ...) so heterogeneous typed values sum structurally.
func toJSON(v any) any {
	b, err := json.Marshal(v)
	if err != nil {
		return v
	}
	var out any
	if err := json.Unmarshal(b, &out); err != nil {
		return v
	}
	return out
}

// sumJSON adds two generic JSON values field-wise: numbers add, objects
// merge recursively, arrays add element-wise (trailing elements of the
// longer array are kept), anything else keeps the first value.
func sumJSON(a, b any) any {
	switch av := a.(type) {
	case float64:
		if bv, ok := b.(float64); ok {
			return av + bv
		}
	case map[string]any:
		if bv, ok := b.(map[string]any); ok {
			for k, v := range bv {
				if cur, ok := av[k]; ok {
					av[k] = sumJSON(cur, v)
				} else {
					av[k] = v
				}
			}
			return av
		}
	case []any:
		if bv, ok := b.([]any); ok {
			n := len(av)
			if len(bv) > n {
				n = len(bv)
			}
			out := make([]any, n)
			for i := 0; i < n; i++ {
				switch {
				case i >= len(av):
					out[i] = bv[i]
				case i >= len(bv):
					out[i] = av[i]
				default:
					out[i] = sumJSON(av[i], bv[i])
				}
			}
			return out
		}
	}
	return a
}

// WriteSnapshotFile writes the registry's JSON snapshot to path, the
// offline counterpart of the ServeMetrics debug endpoint.
func (r *Registry) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Metrics is the process-global registry.
var Metrics = NewRegistry()

package obs

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry: cheap always-on counters and fixed-bucket
// histograms, plus snapshot functions for subsystems that already keep
// their own typed counters (the plan cache, the TCP endpoint).  Counters
// and histograms are single atomic adds on the hot path — cheap enough to
// stay unconditional — while snapshot functions are evaluated only when a
// snapshot is taken (the nccdd debug endpoint, a test, a report).

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// histBuckets is the fixed bucket count: bucket i counts observations v
// with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).  63 buckets cover the
// whole int64 range, so no observation is ever out of bounds.
const histBuckets = 63

// Histogram is a fixed power-of-two-bucket histogram of int64 observations
// (message sizes, pack volumes).  Observe is two atomic adds plus one
// bucket add.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one observation.  Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Smallest i with 2^i >= v.
	i := 0
	for vv := v - 1; vv > 0; vv >>= 1 {
		i++
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// BucketCount is one non-empty histogram bucket: N observations with value
// <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time view of a histogram, with empty
// buckets omitted.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: int64(1) << uint(i), N: n})
		}
	}
	return s
}

// Registry names and snapshots a process's metrics.  Counter and Histogram
// are get-or-create, so hot paths grab their metric once at package init
// and pay only the atomic add per operation; the map is never touched on
// the hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	funcs    map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() any),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs (or replaces) a snapshot function evaluated at
// Snapshot time.  The returned value must be JSON-marshalable.
func (r *Registry) RegisterFunc(name string, f func() any) {
	r.mu.Lock()
	r.funcs[name] = f
	r.mu.Unlock()
}

// Unregister removes a snapshot function.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.funcs, name)
	r.mu.Unlock()
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.hists)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns every metric's current value keyed by name: counters as
// int64, histograms as HistogramSnapshot, snapshot functions evaluated.
// The result marshals directly as the debug endpoint's JSON body.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.RUnlock()

	out := make(map[string]any, len(counters)+len(hists)+len(funcs))
	for n, c := range counters {
		out[n] = c.Load()
	}
	for n, h := range hists {
		out[n] = h.Snapshot()
	}
	for n, f := range funcs {
		out[n] = f()
	}
	return out
}

// WriteSnapshotFile writes the registry's JSON snapshot to path, the
// offline counterpart of the ServeMetrics debug endpoint.
func (r *Registry) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Metrics is the process-global registry.
var Metrics = NewRegistry()

//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build;
// the overhead guard relaxes its bound under it, since instrumented atomic
// loads cost an order of magnitude more than production ones.
const raceEnabled = true

package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// The dashboard must stay a single self-contained page: served with an
// HTML content type, polling the metrics endpoint it is mounted next to,
// and free of external asset references (it has to render on an
// air-gapped cluster node).
func TestDashHandlerSelfContained(t *testing.T) {
	rec := httptest.NewRecorder()
	DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/dash", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"/debug/metrics", "mpi.comm_matrix", "transport."} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard page missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard page references an external asset (%q)", banned)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
)

// Chrome trace-event export (the "JSON Array Format" Perfetto and
// chrome://tracing load).  Spans are stored complete in the rings and
// lowered to begin/end ("B"/"E") pairs only here, so the output is balanced
// by construction even after ring overwrites; instants become "i" events.
//
// Lane mapping: a rank's virtual-clock spans land on tid = rank, its
// wall-clock spans on tid = wallTidBase + rank, and rank -1 (the global
// lane: plan compiles, pool traffic) on tid = globalTid.  Virtual and wall
// timestamps share a file but never share a lane, so within-lane ordering
// is always meaningful.  The multi-process merge assigns one pid per rank
// file and re-zeroes each file's wall lanes to its own earliest wall
// timestamp, which lines ranks up well enough to read (clock skew between
// processes on one host is far below span durations).

const (
	wallTidBase = 1000
	globalTid   = 1999
)

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`    // instant scope
	Args map[string]string `json:"args,omitempty"` // annotations
}

// chromeFile is the on-disk wrapper object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func spanTid(s *Span) int {
	if s.Rank < 0 {
		return globalTid
	}
	if s.Clock == ClockWall {
		return wallTidBase + s.Rank
	}
	return s.Rank
}

func spanArgs(s *Span) map[string]string {
	var a map[string]string
	put := func(k, v string) {
		if a == nil {
			a = make(map[string]string, 4+len(s.Attrs))
		}
		a[k] = v
	}
	if s.Peer >= 0 {
		put("peer", strconv.Itoa(s.Peer))
	}
	if s.Tag != 0 {
		put("tag", strconv.Itoa(s.Tag))
	}
	if s.Bytes != 0 {
		put("bytes", strconv.FormatInt(s.Bytes, 10))
	}
	for _, at := range s.Attrs {
		put(at.Key, at.Val)
	}
	return a
}

// spanEvents lowers one span to its trace events.
func spanEvents(s *Span, pid int) []chromeEvent {
	tid := spanTid(s)
	args := spanArgs(s)
	ts := s.Start * 1e6
	if s.Instant() {
		return []chromeEvent{{Name: s.Kind, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t", Args: args}}
	}
	return []chromeEvent{
		{Name: s.Kind, Ph: "B", Ts: ts, Pid: pid, Tid: tid, Args: args},
		{Name: s.Kind, Ph: "E", Ts: s.End * 1e6, Pid: pid, Tid: tid},
	}
}

// sortedEvent pairs a lowered event with the nesting keys the sort needs:
// the source span's duration and its emission index.
type sortedEvent struct {
	ev   chromeEvent
	dur  float64
	span int
}

// sortEvents orders events the way trace viewers (and our validator)
// require: per (pid, tid) by timestamp; at equal timestamps E before i
// before B so adjacent spans don't overlap; among same-timestamp Bs the
// longer (outer) span opens first, among Es the shorter (inner) closes
// first.  Identical intervals fall back on emission order — earlier-emitted
// opens first and closes last — which is arbitrary but consistent, so
// begin/end stay stack-balanced.
func sortEvents(evs []sortedEvent) {
	phOrder := func(ph string) int {
		switch ph {
		case "E":
			return 0
		case "i":
			return 1
		case "B":
			return 2
		default:
			return 3
		}
	}
	sort.SliceStable(evs, func(a, b int) bool {
		x, y := &evs[a], &evs[b]
		if x.ev.Pid != y.ev.Pid {
			return x.ev.Pid < y.ev.Pid
		}
		if x.ev.Tid != y.ev.Tid {
			return x.ev.Tid < y.ev.Tid
		}
		if x.ev.Ts != y.ev.Ts {
			return x.ev.Ts < y.ev.Ts
		}
		if po, qo := phOrder(x.ev.Ph), phOrder(y.ev.Ph); po != qo {
			return po < qo
		}
		switch x.ev.Ph {
		case "B":
			if x.dur != y.dur {
				return x.dur > y.dur
			}
			return x.span < y.span
		case "E":
			if x.dur != y.dur {
				return x.dur < y.dur
			}
			return x.span > y.span
		}
		return false
	})
}

// laneMeta emits thread_name metadata so viewers label the lanes.
func laneMeta(evs []chromeEvent) []chromeEvent {
	type key struct{ pid, tid int }
	seen := make(map[key]bool)
	var meta []chromeEvent
	for i := range evs {
		k := key{evs[i].Pid, evs[i].Tid}
		if seen[k] {
			continue
		}
		seen[k] = true
		var name string
		switch {
		case k.tid == globalTid:
			name = "global (wall)"
		case k.tid >= wallTidBase:
			name = fmt.Sprintf("rank %d (wall)", k.tid-wallTidBase)
		default:
			name = fmt.Sprintf("rank %d (virtual)", k.tid)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: k.pid, Tid: k.tid,
			Args: map[string]string{"name": name},
		})
	}
	return meta
}

// WriteChromeTrace lowers spans to Chrome trace-event JSON on w.  pid
// labels the process lane group (0 for single-process traces).
func WriteChromeTrace(w io.Writer, spans []Span, pid int) error {
	var sevs []sortedEvent
	for i := range spans {
		s := &spans[i]
		for _, e := range spanEvents(s, pid) {
			sevs = append(sevs, sortedEvent{ev: e, dur: s.End - s.Start, span: i})
		}
	}
	sortEvents(sevs)
	evs := make([]chromeEvent, len(sevs))
	for i := range sevs {
		evs[i] = sevs[i].ev
	}
	evs = append(laneMeta(evs), evs...)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: evs})
}

// WriteChromeTraceFile writes spans as a Chrome trace to path.
func WriteChromeTraceFile(path string, spans []Span, pid int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans, pid); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChromeTraceFile parses a Chrome trace file written by this package
// (or any {"traceEvents": [...]} array-format file).
func ReadChromeTraceFile(path string) ([]chromeEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cf chromeFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cf.TraceEvents, nil
}

// MergeChromeTraceFiles combines per-rank trace files (paths[i] is rank
// i's file) into one multi-process timeline at outPath.  Each input keeps
// its events but moves to pid = its rank, and its wall lanes are re-zeroed
// to the earliest wall timestamp across all inputs so the processes line
// up on a shared axis; virtual lanes are already a shared axis and pass
// through untouched.
func MergeChromeTraceFiles(outPath string, paths []string) error {
	type fileEvents struct {
		evs []chromeEvent
	}
	files := make([]fileEvents, len(paths))
	minWall := math.Inf(1)
	for i, p := range paths {
		evs, err := ReadChromeTraceFile(p)
		if err != nil {
			return err
		}
		files[i].evs = evs
		for j := range evs {
			if evs[j].Ph != "M" && evs[j].Tid >= wallTidBase && evs[j].Ts < minWall {
				minWall = evs[j].Ts
			}
		}
	}
	if math.IsInf(minWall, 1) {
		minWall = 0
	}
	var merged []chromeEvent
	for rank, f := range files {
		// Each file normalizes its own wall epoch: its earliest wall event
		// aligns with the global earliest, preserving within-file deltas.
		fileMin := math.Inf(1)
		for j := range f.evs {
			e := &f.evs[j]
			if e.Ph != "M" && e.Tid >= wallTidBase && e.Ts < fileMin {
				fileMin = e.Ts
			}
		}
		for j := range f.evs {
			e := f.evs[j]
			e.Pid = rank
			if e.Ph != "M" && e.Tid >= wallTidBase && !math.IsInf(fileMin, 1) {
				e.Ts -= fileMin - minWall
			}
			merged = append(merged, e)
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(chromeFile{TraceEvents: merged}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// The expvar-style debug endpoint: GET /debug/metrics returns the
// registry's Snapshot as indented JSON.  nccdd serves it per rank on an
// ephemeral port so multiple daemons coexist on one host.

// MetricsServer is a running metrics HTTP server.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's address (useful with addr ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the server down.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// MetricsHandler returns an http.Handler serving the registry snapshot as
// JSON.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// ServeMetrics starts an HTTP server on addr (":0" for an ephemeral port)
// exposing the registry at /debug/metrics (and at / for convenience).  The
// server runs until Close.
func ServeMetrics(addr string, r *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	h := MetricsHandler(r)
	mux.Handle("/debug/metrics", h)
	mux.Handle("/dash", DashHandler())
	mux.Handle("/", h)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, srv: srv}, nil
}

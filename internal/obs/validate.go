package obs

import "fmt"

// ValidateChromeTrace checks that a set of trace events is a well-formed
// timeline: every phase is one we emit, per-lane timestamps are monotone
// non-decreasing, durations are non-negative, and begin/end events are
// stack-balanced per lane with matching names.  This is the schema checker
// the golden tests and the CI smoke step run over exported traces.
func ValidateChromeTrace(evs []chromeEvent) error {
	type lane struct{ pid, tid int }
	lastTs := make(map[lane]float64)
	stacks := make(map[lane][]chromeEvent)
	for i := range evs {
		e := &evs[i]
		switch e.Ph {
		case "M":
			continue
		case "B", "E", "X", "i", "C":
		default:
			return fmt.Errorf("event %d (%q): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		k := lane{e.Pid, e.Tid}
		if prev, ok := lastTs[k]; ok && e.Ts < prev {
			return fmt.Errorf("event %d (%q): lane %d/%d timestamp went backwards (%.3f < %.3f)",
				i, e.Name, e.Pid, e.Tid, e.Ts, prev)
		}
		lastTs[k] = e.Ts
		switch e.Ph {
		case "B":
			stacks[k] = append(stacks[k], *e)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d (%q): end with no open span on lane %d/%d", i, e.Name, e.Pid, e.Tid)
			}
			top := st[len(st)-1]
			if top.Name != e.Name {
				return fmt.Errorf("event %d: end %q does not match open span %q on lane %d/%d",
					i, e.Name, top.Name, e.Pid, e.Tid)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("lane %d/%d: %d unclosed span(s), first %q",
				k.pid, k.tid, len(st), st[0].Name)
		}
	}
	return nil
}

// ValidateChromeTraceFile reads and validates a trace file.
func ValidateChromeTraceFile(path string) error {
	evs, err := ReadChromeTraceFile(path)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no trace events", path)
	}
	if err := ValidateChromeTrace(evs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// CountEvents tallies non-metadata events by name — the assertion helper
// golden tests use to check that expected span kinds actually appear.
func CountEvents(evs []chromeEvent) map[string]int {
	out := make(map[string]int)
	for i := range evs {
		if evs[i].Ph == "M" || evs[i].Ph == "E" {
			continue
		}
		out[evs[i].Name]++
	}
	return out
}

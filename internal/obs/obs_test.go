package obs

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestRingWrapAndDrops(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Rank: 0, Kind: "k", Start: float64(i), End: float64(i)})
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := float64(6 + i); s.Start != want {
			t.Fatalf("span %d start = %v, want %v (oldest-first after wrap)", i, s.Start, want)
		}
	}
	if d := tr.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	tr.Clear()
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("Clear left %d spans", len(got))
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("Clear left dropped = %d", d)
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Span{Rank: 0, Kind: "k"})
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
	tr.Enable()
	tr.Emit(Span{Rank: 0, Kind: "k"})
	tr.Disable()
	tr.Emit(Span{Rank: 0, Kind: "k2"})
	got := tr.Spans()
	if len(got) != 1 || got[0].Kind != "k" {
		t.Fatalf("got %+v, want exactly the one enabled-window span", got)
	}
}

func TestSpansSortedByRank(t *testing.T) {
	tr := NewTracer(0)
	tr.Enable()
	tr.Emit(Span{Rank: 2, Kind: "b"})
	tr.Emit(Span{Rank: 0, Kind: "a"})
	tr.Emit(Span{Rank: -1, Kind: "g"})
	got := tr.Spans()
	if len(got) != 3 || got[0].Rank != -1 || got[1].Rank != 0 || got[2].Rank != 2 {
		t.Fatalf("spans not in rank order: %+v", got)
	}
}

// TestConcurrentEmitSnapshotClear exercises the contract World.Trace relies
// on: Emit from many goroutines while Spans and Clear run concurrently.
// Run with -race.
func TestConcurrentEmitSnapshotClear(t *testing.T) {
	tr := NewTracer(256)
	tr.Enable()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Emit(Span{Rank: rank, Kind: "k", Start: float64(i), End: float64(i) + 0.5})
			}
		}(r)
	}
	deadline := time.After(100 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			_ = tr.Spans()
			tr.Clear()
		}
	}
	close(stop)
	wg.Wait()
}

// TestDisabledTracerOverhead is the regression guard for the one-atomic-load
// contract: the disabled fast path on a live instrumentation site must stay
// within a few ns/op.  The bound is deliberately loose (CI machines are
// noisy) and overridable via OBS_OVERHEAD_NS_LIMIT.
func TestDisabledTracerOverhead(t *testing.T) {
	limit := 25.0
	if raceEnabled {
		// Race instrumentation multiplies the cost of the atomic load
		// itself; the production bound is enforced by the non-race CI
		// run (the obs-smoke job).
		limit *= 20
	}
	if v := os.Getenv("OBS_OVERHEAD_NS_LIMIT"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad OBS_OVERHEAD_NS_LIMIT %q: %v", v, err)
		}
		limit = f
	}
	tr := NewTracer(0)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Emit(Span{Rank: 0, Kind: "x"})
			}
		}
	})
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("disabled tracer: %.2f ns/op over %d iterations (limit %.0f)", ns, res.N, limit)
	if ns > limit {
		t.Fatalf("disabled tracer costs %.2f ns/op, limit %.0f ns/op", ns, limit)
	}
}

func BenchmarkDisabledEmit(b *testing.B) {
	tr := NewTracer(0)
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Span{Rank: 0, Kind: "x"})
		}
	}
}

func BenchmarkEnabledEmit(b *testing.B) {
	tr := NewTracer(0)
	tr.Enable()
	for i := 0; i < b.N; i++ {
		tr.Emit(Span{Rank: 0, Kind: "x", Start: float64(i), End: float64(i)})
	}
}

// TestRingDropAccountingConcurrent hammers one lane from several writers
// and checks conservation: every emitted span is either retrievable or
// accounted as dropped — no span vanishes without a count.
func TestRingDropAccountingConcurrent(t *testing.T) {
	const (
		writers = 8
		each    = 1000
	)
	tr := NewTracer(128)
	tr.Enable()
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Span{Rank: 0, Kind: "k", Tag: wtr, Start: float64(i), End: float64(i)})
			}
		}(wtr)
	}
	wg.Wait()
	kept := len(tr.Spans())
	dropped := tr.Dropped()
	if int64(kept)+dropped != writers*each {
		t.Fatalf("conservation violated: %d kept + %d dropped != %d emitted",
			kept, dropped, writers*each)
	}
	if kept != 128 {
		t.Fatalf("full ring holds %d spans, want capacity 128", kept)
	}
}

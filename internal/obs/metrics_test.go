package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_sent").Add(3)
	r.Counter("frames_sent").Inc()
	r.Histogram("msg_bytes").Observe(100)
	r.Histogram("msg_bytes").Observe(1000)
	r.Histogram("msg_bytes").Observe(-5) // clamps to 0
	r.RegisterFunc("cache", func() any { return map[string]int{"hits": 7} })

	snap := r.Snapshot()
	if got := snap["frames_sent"]; got != int64(4) {
		t.Fatalf("frames_sent = %v, want 4", got)
	}
	h, ok := snap["msg_bytes"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("msg_bytes is %T", snap["msg_bytes"])
	}
	if h.Count != 3 || h.Sum != 1100 {
		t.Fatalf("histogram count/sum = %d/%d, want 3/1100", h.Count, h.Sum)
	}
	// 100 lands in the le=128 bucket, 1000 in le=1024, 0 in le=1.
	want := map[int64]int64{1: 1, 128: 1, 1024: 1}
	for _, b := range h.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want %v", b.Le, b.N, want)
		}
		delete(want, b.Le)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}

	names := r.Names()
	if len(names) != 3 || names[0] != "cache" || names[1] != "frames_sent" || names[2] != "msg_bytes" {
		t.Fatalf("Names() = %v", names)
	}

	r.Unregister("cache")
	if _, ok := r.Snapshot()["cache"]; ok {
		t.Fatal("Unregister left the snapshot func")
	}

	// The snapshot must be JSON-marshalable as-is (the HTTP body contract).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

// TestRankTotalAggregation checks that per-rank metric families gain a
// summed ".total" sibling: counters add, snapshot-func structs add
// field-wise through their JSON form, and non-rank names are untouched.
func TestRankTotalAggregation(t *testing.T) {
	type wire struct {
		Frames int64   `json:"frames"`
		Bytes  int64   `json:"bytes"`
		Rate   float64 `json:"rate"`
	}
	r := NewRegistry()
	r.RegisterFunc("transport.tcp.rank0", func() any { return wire{Frames: 3, Bytes: 100, Rate: 1.5} })
	r.RegisterFunc("transport.tcp.rank1", func() any { return wire{Frames: 5, Bytes: 200, Rate: 0.5} })
	r.Counter("transport.shm.rank0.drops").Add(2)
	r.Counter("transport.shm.rank3.drops").Add(7)
	r.Counter("plain_counter").Add(9)

	snap := r.Snapshot()
	tcp, ok := snap["transport.tcp.total"].(map[string]any)
	if !ok {
		t.Fatalf("transport.tcp.total is %T", snap["transport.tcp.total"])
	}
	if tcp["frames"] != float64(8) || tcp["bytes"] != float64(300) || tcp["rate"] != 2.0 {
		t.Fatalf("tcp total = %v", tcp)
	}
	if got := snap["transport.shm.drops.total"]; got != float64(9) {
		t.Fatalf("shm drops total = %v, want 9", got)
	}
	// Raw per-rank entries survive alongside.
	if _, ok := snap["transport.tcp.rank0"]; !ok {
		t.Fatal("raw per-rank entry removed")
	}
	if _, ok := snap["plain_counter.total"]; ok {
		t.Fatal("non-rank metric grew a total")
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("retransmits").Add(42)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, body)
	}
	if got["retransmits"] != float64(42) {
		t.Fatalf("retransmits = %v, want 42", got["retransmits"])
	}
}

// TestJobTotalAggregation checks the two-layer service rollup: per-job
// per-rank comm matrices fold into a per-job ".total", and the per-job
// totals fold once more into the family-wide ".total" (the ".total.total"
// spelling is collapsed).
func TestJobTotalAggregation(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpi.comm_matrix.job7.rank0").Add(3)
	r.Counter("mpi.comm_matrix.job7.rank1").Add(4)
	r.Counter("mpi.comm_matrix.job9.rank1").Add(10)

	snap := r.Snapshot()
	if got := snap["mpi.comm_matrix.job7.total"]; got != float64(7) {
		t.Fatalf("job7 total = %v, want 7", got)
	}
	if got := snap["mpi.comm_matrix.job9.total"]; got != float64(10) {
		t.Fatalf("job9 total = %v, want 10", got)
	}
	if got := snap["mpi.comm_matrix.total"]; got != float64(17) {
		t.Fatalf("family total = %v, want 17", got)
	}
	if _, ok := snap["mpi.comm_matrix.total.total"]; ok {
		t.Fatal("collapsed .total.total spelling leaked into the snapshot")
	}
	// Raw per-job per-rank entries survive alongside the rollups.
	if _, ok := snap["mpi.comm_matrix.job7.rank0"]; !ok {
		t.Fatal("raw per-job entry removed")
	}
}

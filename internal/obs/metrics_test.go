package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_sent").Add(3)
	r.Counter("frames_sent").Inc()
	r.Histogram("msg_bytes").Observe(100)
	r.Histogram("msg_bytes").Observe(1000)
	r.Histogram("msg_bytes").Observe(-5) // clamps to 0
	r.RegisterFunc("cache", func() any { return map[string]int{"hits": 7} })

	snap := r.Snapshot()
	if got := snap["frames_sent"]; got != int64(4) {
		t.Fatalf("frames_sent = %v, want 4", got)
	}
	h, ok := snap["msg_bytes"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("msg_bytes is %T", snap["msg_bytes"])
	}
	if h.Count != 3 || h.Sum != 1100 {
		t.Fatalf("histogram count/sum = %d/%d, want 3/1100", h.Count, h.Sum)
	}
	// 100 lands in the le=128 bucket, 1000 in le=1024, 0 in le=1.
	want := map[int64]int64{1: 1, 128: 1, 1024: 1}
	for _, b := range h.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want %v", b.Le, b.N, want)
		}
		delete(want, b.Le)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}

	names := r.Names()
	if len(names) != 3 || names[0] != "cache" || names[1] != "frames_sent" || names[2] != "msg_bytes" {
		t.Fatalf("Names() = %v", names)
	}

	r.Unregister("cache")
	if _, ok := r.Snapshot()["cache"]; ok {
		t.Fatal("Unregister left the snapshot func")
	}

	// The snapshot must be JSON-marshalable as-is (the HTTP body contract).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("retransmits").Add(42)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, body)
	}
	if got["retransmits"] != float64(42) {
		t.Fatalf("retransmits = %v, want 42", got["retransmits"])
	}
}

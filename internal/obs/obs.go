// Package obs is the unified observability layer: structured spans, a
// metrics registry, and Chrome-trace export, shared by every layer of the
// stack — both transports (inproc virtual-time and TCP wall-clock), the
// collectives, the datatype engine, the reliability protocol, and the
// multigrid/KSP solver stack.
//
// The design constraint that shapes everything here is that instrumentation
// stays wired into production hot paths permanently: a *disabled* tracer
// must cost one atomic load per site (see Enabled and the overhead guard in
// obs_test.go), and an *enabled* tracer must stay safe under heavy traffic,
// which the per-lane bounded ring buffers guarantee — memory is fixed at
// Enable time and the oldest spans are dropped, never the writer blocked.
//
// Spans carry their clock domain explicitly: the in-process transport and
// everything above it timestamps in virtual seconds (deterministic,
// cross-rank coupled), while the TCP transport timestamps in wall seconds
// since the tracer's epoch (real, per-process).  The Chrome exporter keeps
// the domains on separate lanes and the multi-process merge step reconciles
// wall epochs per rank file; see chrome.go and DESIGN.md §11.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock identifies a span's time domain.
type Clock uint8

const (
	// ClockVirtual timestamps are deterministic virtual seconds from the
	// simnet cluster model (the inproc transport and the mpi layer above
	// any transport).
	ClockVirtual Clock = iota
	// ClockWall timestamps are real seconds since the tracer's epoch (the
	// TCP transport and the datatype compile path).
	ClockWall
)

// Attr is one key/value annotation on a span.  Values are strings so spans
// stay allocation-predictable; format numbers with strconv.
type Attr struct {
	Key string
	Val string
}

// Span is one traced operation.  End == Start marks an instant event (a
// retransmission, a cache miss); End > Start a duration.  Rank -1 is the
// process-global lane used by layers with no rank context (the datatype
// plan compiler, the buffer pool).
type Span struct {
	Rank  int
	Kind  string // operation class: "send", "smooth", "tcp_retransmit", ...
	Peer  int    // peer rank for point-to-point traffic, -1 otherwise
	Tag   int
	Bytes int64
	Start float64 // seconds in the span's clock domain
	End   float64
	Clock Clock
	// Job labels the tenant world the span belongs to when the process
	// hosts several (the multi-job service); zero for standalone runs.
	// Stamped automatically by a tracer with SetJob.
	Job   uint64
	Attrs []Attr
}

// Instant reports whether the span is an instant event.
func (s *Span) Instant() bool { return s.End <= s.Start }

// DefaultLaneCapacity bounds each lane's ring buffer.  At ~100 bytes per
// span this caps a 4-rank trace around 25 MB — generous for a solve, firmly
// bounded under adversarial traffic.
const DefaultLaneCapacity = 1 << 16

// ring is one lane's bounded span buffer.  Writers overwrite the oldest
// span when full; the drop is accounted on the tracer.
type ring struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

func (r *ring) push(s Span) (dropped bool) {
	r.mu.Lock()
	if r.next == len(r.buf) && !r.full && r.next < cap(r.buf) {
		// Grow-on-demand up to capacity keeps an idle lane cheap.
		r.buf = append(r.buf, s)
		r.next++
		r.mu.Unlock()
		return false
	}
	if r.next == cap(r.buf) {
		r.next = 0
		r.full = true
	}
	dropped = r.full
	if r.next < len(r.buf) {
		r.buf[r.next] = s
	} else {
		r.buf = append(r.buf, s)
	}
	r.next++
	r.mu.Unlock()
	return dropped
}

// snapshot returns the lane's spans oldest-first.
func (r *ring) snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

func (r *ring) clear() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.full = false
	r.mu.Unlock()
}

// Tracer records spans into per-lane bounded rings.  All methods are safe
// for concurrent use; Emit is safe to call from transport reader goroutines
// while Spans or Clear runs — the contract World.Trace relies on.
type Tracer struct {
	enabled atomic.Bool
	epoch   time.Time
	laneCap int
	job     atomic.Uint64 // tenant label stamped onto every emitted span

	mu      sync.Mutex
	lanes   map[int]*ring
	dropped atomic.Int64
}

// NewTracer returns a disabled tracer whose lanes hold at most laneCap
// spans each (0 = DefaultLaneCapacity).
func NewTracer(laneCap int) *Tracer {
	if laneCap <= 0 {
		laneCap = DefaultLaneCapacity
	}
	return &Tracer{epoch: time.Now(), laneCap: laneCap, lanes: make(map[int]*ring)}
}

// Enable starts recording.  Idempotent.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable stops recording; existing spans are kept.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer records.  This is the one-atomic-load
// fast path every instrumentation site checks first.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Now returns wall seconds since the tracer's epoch — the timestamp source
// for ClockWall spans.
func (t *Tracer) Now() float64 { return time.Since(t.epoch).Seconds() }

// SetJob labels every span this tracer emits from now on with the given
// tenant job id (zero clears).  A per-world tracer inside a multi-job
// service gets its job stamped once at world construction, so the
// instrumentation sites stay unchanged.
func (t *Tracer) SetJob(job uint64) { t.job.Store(job) }

// Emit records one span if the tracer is enabled.
func (t *Tracer) Emit(s Span) {
	if !t.enabled.Load() {
		return
	}
	if j := t.job.Load(); j != 0 && s.Job == 0 {
		s.Job = j
	}
	t.mu.Lock()
	r := t.lanes[s.Rank]
	if r == nil {
		r = &ring{buf: make([]Span, 0, t.laneCap)}
		t.lanes[s.Rank] = r
	}
	t.mu.Unlock()
	if r.push(s) {
		t.dropped.Add(1)
	}
}

// Dropped returns how many spans the bounded rings discarded.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Spans returns every recorded span: lanes in rank order, each lane
// oldest-first.  Safe while emission continues (each lane is snapshotted
// under its own lock).
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	ranks := make([]int, 0, len(t.lanes))
	rings := make([]*ring, 0, len(t.lanes))
	for rank := range t.lanes {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		rings = append(rings, t.lanes[rank])
	}
	t.mu.Unlock()
	var out []Span
	for _, r := range rings {
		out = append(out, r.snapshot()...)
	}
	return out
}

// Clear drops every recorded span and resets the drop counter.  Safe while
// emission continues.
func (t *Tracer) Clear() {
	t.mu.Lock()
	rings := make([]*ring, 0, len(t.lanes))
	for _, r := range t.lanes {
		rings = append(rings, r)
	}
	t.mu.Unlock()
	for _, r := range rings {
		r.clear()
	}
	t.dropped.Store(0)
}

// Default is the process-global tracer, used by layers with no world handle
// (the datatype plan compiler, the buffer pool) and merged into command
// exports next to the per-world tracer.  It is a fixed object — Enable it,
// never replace it.
var Default = NewTracer(0)

// Enabled reports whether the process-global tracer records: one atomic
// load, the fast path for global instrumentation sites.
func Enabled() bool { return Default.enabled.Load() }

// Emit records a span on the process-global tracer.
func Emit(s Span) { Default.Emit(s) }

package obs

import "net/http"

// The live communication-matrix dashboard: a single self-contained HTML
// page that polls /debug/metrics and renders any "mpi.comm_matrix.*"
// entries (published by the nccdd daemon from World.CommMatrix) as a
// heat-colored src×dst table, alongside the aggregate transport counters.
// When the daemon hosts a multi-tenant service, matrices arrive under
// per-job names ("mpi.comm_matrix.job7.rank2") and the page grows a job
// selector — one heatmap tab per tenant, so one job's traffic is never
// visually mixed into another's.  No external assets — the page must work
// on an air-gapped cluster node.

// DashHandler serves the dashboard page.
func DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashHTML))
	})
}

const dashHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>nccd communication matrix</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #111; color: #ddd; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.2em; }
table { border-collapse: collapse; margin-top: .5em; }
td, th { border: 1px solid #333; padding: 3px 8px; text-align: right; min-width: 4em; }
th { color: #9ad; font-weight: normal; }
#err { color: #f66; } .dim { color: #777; }
#stats span { margin-right: 1.5em; }
#jobs button { background: #222; color: #ddd; border: 1px solid #444; padding: 3px 10px; margin-right: .4em; cursor: pointer; }
#jobs button.sel { background: #357; border-color: #9ad; }
</style></head><body>
<h1>nccd live communication matrix</h1>
<div id="stats" class="dim">connecting…</div>
<div id="err"></div>
<div id="jobs"></div>
<h2>bytes by (src row → dst col)</h2>
<div id="matrix" class="dim">no mpi.comm_matrix.* metrics yet</div>
<h2>transport totals</h2>
<div id="transport" class="dim">—</div>
<script>
function fmtB(v) {
  if (v >= 1<<30) return (v/(1<<30)).toFixed(1)+'G';
  if (v >= 1<<20) return (v/(1<<20)).toFixed(1)+'M';
  if (v >= 1<<10) return (v/(1<<10)).toFixed(1)+'K';
  return String(v);
}
function heat(v, max) {
  if (!v || !max) return '';
  var t = Math.log(1+v)/Math.log(1+max);
  return 'background:rgb('+Math.round(40+120*t)+','+Math.round(30+40*t)+','+Math.round(60-30*t)+')';
}
var selJob = null, lastSnap = null;
function groupMatrices(snap) {
  // Bucket per-rank matrices by tenant: "mpi.comm_matrix.rank2" goes to
  // the standalone "world" bucket, "mpi.comm_matrix.job7.rank2" to "job7".
  var groups = {};
  var re = /^mpi\.comm_matrix\.(?:(job\d+)\.)?rank\d+$/;
  for (var k in snap) {
    var m = re.exec(k);
    if (!m) continue;
    var g = m[1] || 'world';
    (groups[g] = groups[g] || []).push(snap[k]);
  }
  return groups;
}
function renderTabs(groups) {
  var names = Object.keys(groups).sort(function(a, b) {
    if (a === 'world') return -1;
    if (b === 'world') return 1;
    return parseInt(a.slice(3)) - parseInt(b.slice(3));
  });
  var el = document.getElementById('jobs');
  if (names.length < 2 && (names.length === 0 || names[0] === 'world')) {
    el.innerHTML = ''; return names[0] || null;
  }
  if (selJob === null || names.indexOf(selJob) < 0) selJob = names[0];
  el.innerHTML = names.map(function(n) {
    return '<button class="'+(n === selJob ? 'sel' : '')+'" onclick="pick(\''+n+'\')">'+n+'</button>';
  }).join('');
  return selJob;
}
function pick(n) { selJob = n; if (lastSnap) render(lastSnap); }
function render(snap) {
  lastSnap = snap;
  var groups = groupMatrices(snap);
  var which = renderTabs(groups);
  // Merge the selected tenant's per-rank matrices (each daemon publishes
  // its world view; cells owned by remote ranks are zero in a local view,
  // so taking the max per cell is safe for bytes/msgs and per-rank
  // publishes are identical for in-process worlds).
  var mats = which ? groups[which] : [];
  var el = document.getElementById('matrix');
  if (mats.length) {
    var n = mats[0].n, bytes = [], retrans = [];
    for (var i = 0; i < n; i++) { bytes.push(new Array(n).fill(0)); retrans.push(new Array(n).fill(0)); }
    mats.forEach(function(m) {
      for (var i = 0; i < n; i++) for (var j = 0; j < n; j++) {
        bytes[i][j] = Math.max(bytes[i][j], m.bytes[i][j]);
        retrans[i][j] = Math.max(retrans[i][j], m.retrans[i][j]);
      }
    });
    var max = 0, total = 0, cells = [];
    for (var i = 0; i < n; i++) for (var j = 0; j < n; j++) {
      if (i !== j && bytes[i][j] > 0) { cells.push(bytes[i][j]); total += bytes[i][j]; }
      if (bytes[i][j] > max) max = bytes[i][j];
    }
    var mean = cells.length ? total/cells.length : 0;
    var h = '<table><tr><th></th>';
    for (var j = 0; j < n; j++) h += '<th>r'+j+'</th>';
    h += '</tr>';
    for (var i = 0; i < n; i++) {
      h += '<tr><th>r'+i+'</th>';
      for (var j = 0; j < n; j++) {
        var rt = retrans[i][j] ? ' <small>('+retrans[i][j]+'rt)</small>' : '';
        h += '<td style="'+heat(bytes[i][j], max)+'">'+(bytes[i][j] ? fmtB(bytes[i][j])+rt : '·')+'</td>';
      }
      h += '</tr>';
    }
    h += '</table>';
    el.className = ''; el.innerHTML = h;
    var njobs = Object.keys(groups).filter(function(g) { return g !== 'world'; }).length;
    document.getElementById('stats').innerHTML =
      '<span>'+(which === 'world' ? 'standalone world' : which)+'</span>'+
      '<span>ranks: '+n+'</span><span>total: '+fmtB(total)+'B</span>'+
      '<span>nonuniformity (max/mean): '+(mean ? (max/mean).toFixed(2) : '—')+'</span>'+
      (njobs ? '<span>jobs live: '+njobs+'</span>' : '');
  } else {
    el.className = 'dim'; el.textContent = 'no mpi.comm_matrix.* metrics yet';
  }
  var t = [], keys = ['transport.tcp.total', 'transport.shm.total', 'datatype.pool'];
  keys.forEach(function(k) {
    if (snap[k]) t.push(k.split('.').slice(0, 2).join('.')+': '+JSON.stringify(snap[k]));
  });
  if (t.length) {
    var tr = document.getElementById('transport');
    tr.className = ''; tr.textContent = t.join('  |  ');
  }
}
function tick() {
  fetch('/debug/metrics').then(function(r) { return r.json(); }).then(function(snap) {
    document.getElementById('err').textContent = '';
    render(snap);
  }).catch(function(e) {
    document.getElementById('err').textContent = 'fetch failed: ' + e;
  });
}
tick(); setInterval(tick, 1000);
</script></body></html>
`

package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/obs"
	"nccd/internal/simnet"
)

// TCP hosts one rank of a world as an OS process and reaches the other
// ranks over localhost (or any) TCP.  One multiplexed connection carries
// each peer pair's traffic in both directions — data frames, their acks,
// and runtime control messages interleave on the same stream — and the
// connection pool establishes the full mesh during Start with a
// deterministic dial direction (each rank dials its lower-ranked peers and
// accepts from higher ones), so exactly one connection exists per pair.
//
// Reliability: a clean TCP stream does not lose or corrupt bytes, so by
// default data frames are fire-and-forget (still CRC-framed).  When a
// simnet.FaultPlan is configured, it is injected *below* the framing layer
// on the sender: a transmission attempt may be dropped before the write,
// duplicated, delayed, or have a byte of its encoded frame flipped so the
// receiver's CRC trailer rejects it.  Such frames travel with FlagReliable
// and a per-link sequence number; the receiver acknowledges accepted
// frames and deduplicates by sequence, and the sender retransmits on ack
// timeout with exponential backoff — the same protocol the mpi layer
// simulates in virtual time for the inproc transport, now executed against
// real sockets.
// debugTCP enables connection-lifecycle diagnostics on stderr.
var debugTCP = os.Getenv("NCCD_DEBUG_TCP") != ""

type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	deliver Handler
	down    DownFunc
	health  atomic.Pointer[HealthFuncs]

	mu        sync.Mutex
	connected int
	connCond  *sync.Cond

	peers  []*tcpPeer
	closed atomic.Bool
	wg     sync.WaitGroup
	hbStop chan struct{}

	// epoch is the membership epoch stamped into hellos and beats.  The
	// accept path rejects hellos from an older epoch, fencing traffic from
	// a process that was replaced.
	epoch atomic.Uint64

	// beatsPaused suppresses outbound heartbeats while still reading — the
	// deterministic stand-in for a SIGSTOPped process (connection open,
	// nothing sent) in failure-detection tests.
	beatsPaused atomic.Bool

	stats tcpCounters

	// inflight gauges payload bytes inside Send/SendVectored calls that
	// have not yet been released — written to the socket for plain sends,
	// acknowledged for reliable ones.  It backs Occupancy, the admission
	// watermark signal of the multi-tenant service.
	inflight atomic.Int64

	// tracer, when set, records wall-clock spans for wire operations.  An
	// atomic pointer so reader goroutines may race SetTracer safely; the
	// world wires it before Start in practice.
	tracer atomic.Pointer[obs.Tracer]
}

// HeartbeatConfig parameterizes the failure detector.  Every interval the
// endpoint sends a beat to each connected peer and scores how long each
// peer has been silent (no frame of any kind).  A peer silent for Miss
// intervals becomes suspect (HealthFuncs.Suspect, recoverable); one silent
// for FailAfter intervals is declared down exactly as if its connection had
// closed — which is how a hung process, unlike a crashed one, is caught.
type HeartbeatConfig struct {
	// Interval between beats; 0 disables the detector entirely.
	Interval time.Duration
	// Miss is the suspicion threshold in missed intervals.  Default 3.
	Miss int
	// FailAfter is the hard-failure threshold in missed intervals.
	// Default 3*Miss.
	FailAfter int
}

// TCPConfig parameterizes a TCP endpoint.
type TCPConfig struct {
	// Rank is the world rank this process hosts.
	Rank int
	// Size is the world size.
	Size int
	// WorldID distinguishes concurrent worlds; the handshake rejects
	// connections from a different world.
	WorldID uint64
	// Addrs lists every rank's listen address ("host:port"), indexed by
	// rank.
	Addrs []string
	// Listener, when non-nil, is a pre-bound listener for Addrs[Rank]
	// (launchers and tests bind first to avoid port races).
	Listener net.Listener
	// Faults, when non-nil and lossy, is injected below the framing layer
	// on every outbound data frame (see the type comment).
	Faults *simnet.FaultPlan
	// AckTimeout is the wall-clock wait before the first retransmission of
	// an unacknowledged reliable frame.  Default 200 ms.
	AckTimeout time.Duration
	// Backoff multiplies the ack timeout after every failed attempt.
	// Default 2.
	Backoff float64
	// MaxRetries bounds transmission attempts per reliable frame.
	// Default 16.
	MaxRetries int
	// DialTimeout bounds Start's mesh establishment.  Default 15 s.
	DialTimeout time.Duration
	// MaxFrame bounds a single frame's wire size.  Default 256 MiB.
	MaxFrame int
	// Heartbeat configures the failure detector; a zero Interval disables
	// it (clean-close detection still works via connection loss).
	Heartbeat HeartbeatConfig
	// Epoch is the membership epoch this endpoint starts in.  A respawned
	// rank is launched with the bumped epoch so survivors can tell it from
	// a stale connection of its previous incarnation.
	Epoch uint64
	// Rejoin makes Start dial every peer instead of only lower ranks: a
	// respawned rank re-enters an established mesh whose survivors are not
	// dialing anyone.
	Rejoin bool
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.AckTimeout == 0 {
		c.AckTimeout = 200 * time.Millisecond
	}
	if c.Backoff == 0 {
		c.Backoff = 2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 16
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 15 * time.Second
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Heartbeat.Interval > 0 {
		if c.Heartbeat.Miss == 0 {
			c.Heartbeat.Miss = 3
		}
		if c.Heartbeat.FailAfter == 0 {
			c.Heartbeat.FailAfter = 3 * c.Heartbeat.Miss
		}
	}
	return c
}

// TCPStats counts wire traffic and the reliability protocol's work.
type TCPStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	// Receiver-side defenses.
	CRCRejects, DupRejects int64
	// Sender-side protocol and injected-fault accounting.
	Retransmits, Dropped, Corrupted, Duplicated int64
	AcksSent, AcksRecv                          int64
	// Failure-detector traffic.
	BeatsSent, BeatsRecv int64
	// Zero-copy path accounting: frames gathered straight from user memory
	// by SendVectored, and how many of those had to be sealed (spilled to a
	// pooled copy) because a retransmission, duplication or corruption
	// attempt needed a stable frame image.
	VectoredSends, SealSpills int64
}

type tcpCounters struct {
	framesSent, framesRecv     atomic.Int64
	bytesSent, bytesRecv       atomic.Int64
	crcRejects, dupRejects     atomic.Int64
	retransmits, dropped       atomic.Int64
	corrupted, duplicated      atomic.Int64
	acksSent, acksRecv         atomic.Int64
	beatsSent, beatsRecv       atomic.Int64
	vectoredSends, sealSpills  atomic.Int64
}

// tcpPeer is one pooled peer connection and its reliability state.  The
// connection is generational: a respawned peer replaces a torn-down
// connection in place, resetting the per-link reliability state, and the
// generation counter keeps a stale reader or writer of the old connection
// from tearing down the new one.
type tcpPeer struct {
	rank int

	wmu     sync.Mutex // serializes frame writes (data from the rank, acks and beats)
	conn    net.Conn   // guarded by wmu
	gen     uint64     // connection generation, guarded by wmu
	scratch []byte     // frame-head assembly buffer, under wmu
	vecbuf  [][]byte   // reusable net.Buffers backing array, under wmu
	alive   atomic.Bool

	// liveMu serializes the down/up liveness callbacks for this peer so
	// their order matches connection-generation order: a stale down — one
	// whose generation has already been replaced by a rejoined connection —
	// is suppressed rather than delivered after the replacement's up, which
	// would re-mark a healthy rejoined rank as dead with no recovery left.
	liveMu sync.Mutex

	seq atomic.Uint64 // next outbound reliable sequence on this link

	ackMu sync.Mutex
	acks  map[uint64]chan struct{}

	// lastHeard is when any frame last arrived from this peer (unix nanos);
	// the failure detector scores silence against it.
	lastHeard atomic.Int64
	// suspect marks a peer past the miss threshold but not yet declared
	// down; cleared if it resumes.
	suspect atomic.Bool
}

// NewTCP creates (but does not connect) a TCP endpoint.  It binds the
// listener immediately so peers can start dialing before Start is called.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("transport: rank %d out of range for size %d", cfg.Rank, cfg.Size)
	}
	if len(cfg.Addrs) != cfg.Size {
		return nil, fmt.Errorf("transport: %d addrs for %d ranks", len(cfg.Addrs), cfg.Size)
	}
	t := &TCP{cfg: cfg, ln: cfg.Listener, hbStop: make(chan struct{})}
	t.epoch.Store(cfg.Epoch)
	t.connCond = sync.NewCond(&t.mu)
	t.peers = make([]*tcpPeer, cfg.Size)
	for r := range t.peers {
		t.peers[r] = &tcpPeer{rank: r, acks: make(map[uint64]chan struct{})}
	}
	if t.ln == nil && cfg.Size > 1 {
		ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
		}
		t.ln = ln
	}
	return t, nil
}

// Size returns the world size.
func (t *TCP) Size() int { return t.cfg.Size }

// Self returns the rank this endpoint hosts.
func (t *TCP) Self() int { return t.cfg.Rank }

// Local reports whether r is the hosted rank.
func (t *TCP) Local(r int) bool { return r == t.cfg.Rank }

// Wallclock reports true: this transport has no virtual-time coupling.
func (t *TCP) Wallclock() bool { return true }

// Occupancy reports payload bytes currently committed to the wire but not
// yet released (written, or acknowledged when the link is reliable).
func (t *TCP) Occupancy() Occupancy {
	return Occupancy{InflightBytes: t.inflight.Load()}
}

// SetTracer attaches a span recorder to the endpoint.  Wire operations
// trace as ClockWall spans on the hosted rank's wall lane.
func (t *TCP) SetTracer(tr *obs.Tracer) { t.tracer.Store(tr) }

// SetHealth wires the liveness callbacks.  Safe to call at any time,
// including after Start.
func (t *TCP) SetHealth(h HealthFuncs) { t.health.Store(&h) }

// Epoch returns the endpoint's current membership epoch.
func (t *TCP) Epoch() uint64 { return t.epoch.Load() }

// SetEpoch raises the membership epoch.  Future hellos and beats carry it,
// and inbound hellos below it are rejected; survivors bump it when they
// commit a recovery so a stale incarnation of a replaced rank cannot
// reconnect.
func (t *TCP) SetEpoch(e uint64) {
	for {
		old := t.epoch.Load()
		if e <= old || t.epoch.CompareAndSwap(old, e) {
			return
		}
	}
}

// PauseHeartbeats suppresses (true) or resumes (false) outbound beats while
// the endpoint keeps reading — the deterministic equivalent of SIGSTOPping
// the process, for failure-detection tests.
func (t *TCP) PauseHeartbeats(pause bool) { t.beatsPaused.Store(pause) }

// LastHeard returns when any frame last arrived from rank r (zero time if
// never), letting callers distinguish a hung peer from a merely slow one.
func (t *TCP) LastHeard(r int) time.Time {
	if r < 0 || r >= t.cfg.Size || r == t.cfg.Rank {
		return time.Time{}
	}
	ns := t.peers[r].lastHeard.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// PeerHealth is the failure detector's view of one peer.
type PeerHealth struct {
	Rank      int
	Alive     bool // connection up
	Suspect   bool // past the miss threshold, not yet declared down
	LastHeard time.Time
}

// Health returns the failure detector's view of rank r.
func (t *TCP) Health(r int) PeerHealth {
	h := PeerHealth{Rank: r, LastHeard: t.LastHeard(r)}
	if r >= 0 && r < t.cfg.Size && r != t.cfg.Rank {
		h.Alive = t.peers[r].alive.Load()
		h.Suspect = t.peers[r].suspect.Load()
	}
	return h
}

// trace emits a wall-clock span if a tracer is attached and enabled.
func (t *TCP) trace(kind string, peer int, bytes int64, start, end float64, attrs ...obs.Attr) {
	tr := t.tracer.Load()
	if tr == nil || !tr.Enabled() {
		return
	}
	tr.Emit(obs.Span{Rank: t.cfg.Rank, Kind: kind, Peer: peer, Bytes: bytes,
		Start: start, End: end, Clock: obs.ClockWall, Attrs: attrs})
}

// traceNow returns the attached tracer's wall clock, or 0 with ok=false
// when tracing is off (the span sites skip timestamping entirely then).
func (t *TCP) traceNow() (float64, bool) {
	tr := t.tracer.Load()
	if tr == nil || !tr.Enabled() {
		return 0, false
	}
	return tr.Now(), true
}

// Stats returns a snapshot of the wire and reliability counters.
func (t *TCP) Stats() TCPStats {
	c := &t.stats
	return TCPStats{
		FramesSent: c.framesSent.Load(), FramesRecv: c.framesRecv.Load(),
		BytesSent: c.bytesSent.Load(), BytesRecv: c.bytesRecv.Load(),
		CRCRejects: c.crcRejects.Load(), DupRejects: c.dupRejects.Load(),
		Retransmits: c.retransmits.Load(), Dropped: c.dropped.Load(),
		Corrupted: c.corrupted.Load(), Duplicated: c.duplicated.Load(),
		AcksSent: c.acksSent.Load(), AcksRecv: c.acksRecv.Load(),
		BeatsSent: c.beatsSent.Load(), BeatsRecv: c.beatsRecv.Load(),
		VectoredSends: c.vectoredSends.Load(), SealSpills: c.sealSpills.Load(),
	}
}

// Start establishes the full connection mesh — dialing every lower rank,
// accepting every higher one (or dialing everyone when rejoining an
// established mesh) — and begins delivering inbound frames.
func (t *TCP) Start(deliver Handler, down DownFunc) error {
	if t.deliver != nil {
		return fmt.Errorf("transport: tcp already started")
	}
	t.deliver = deliver
	t.down = down
	if t.cfg.Size == 1 {
		return nil
	}

	t.wg.Add(1)
	go t.acceptLoop()
	if t.cfg.Heartbeat.Interval > 0 {
		// Beat from the first registered connection on: a rejoining
		// endpoint may spend a while establishing the rest of its mesh, and
		// peers already connected must not hard-fail it for that silence.
		t.wg.Add(1)
		go t.heartbeatLoop()
	}

	var dials []int
	for r := 0; r < t.cfg.Size; r++ {
		if r < t.cfg.Rank || (t.cfg.Rejoin && r != t.cfg.Rank) {
			dials = append(dials, r)
		}
	}
	dialErr := make(chan error, len(dials))
	for _, r := range dials {
		go func(r int) { dialErr <- t.dialPeer(r) }(r)
	}
	for range dials {
		if err := <-dialErr; err != nil {
			t.Close()
			return err
		}
	}

	// Wait for the higher ranks to dial in.
	deadline := time.Now().Add(t.cfg.DialTimeout)
	t.mu.Lock()
	for t.connected < t.cfg.Size-1 && !t.closed.Load() {
		if time.Now().After(deadline) {
			n := t.connected
			t.mu.Unlock()
			t.Close()
			return fmt.Errorf("transport: rank %d: only %d/%d peers connected within %v",
				t.cfg.Rank, n, t.cfg.Size-1, t.cfg.DialTimeout)
		}
		t.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		t.mu.Lock()
	}
	t.mu.Unlock()
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handshakeAccept(conn)
		}()
	}
}

// handshakeAccept validates an inbound dialer and registers its connection.
// During initial mesh formation only higher ranks dial in; a lower rank
// dialing is a respawned peer rejoining, accepted when its slot is free and
// its hello carries the current (or a newer) membership epoch — a stale
// incarnation from before a committed recovery is fenced out here.
func (t *TCP) handshakeAccept(conn net.Conn) {
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
	f, err := t.readFrame(br)
	if err != nil || f.Kind != KindHello || f.WorldID != t.cfg.WorldID ||
		f.WSize != int32(t.cfg.Size) || f.Rank == int32(t.cfg.Rank) ||
		f.Rank < 0 || f.Rank >= int32(t.cfg.Size) || f.Epoch < t.epoch.Load() {
		conn.Close()
		return
	}
	if err := t.writeHello(conn); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	t.register(int(f.Rank), conn, br)
}

// dialPeer connects to a lower-ranked peer, retrying until its listener is
// up or the dial timeout expires.
func (t *TCP) dialPeer(r int) error {
	deadline := time.Now().Add(t.cfg.DialTimeout)
	backoff := 2 * time.Millisecond
	for {
		if t.closed.Load() {
			return ErrClosed
		}
		conn, err := net.DialTimeout("tcp", t.cfg.Addrs[r], time.Until(deadline))
		if err == nil {
			conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
			herr := t.writeHello(conn)
			var br *bufio.Reader
			if herr == nil {
				br = bufio.NewReader(conn)
				f, ferr := t.readFrame(br)
				switch {
				case ferr != nil:
					herr = fmt.Errorf("transport: bad hello reply from rank %d: %v", r, ferr)
				case f.Kind != KindHello || f.WorldID != t.cfg.WorldID || f.Rank != int32(r):
					herr = fmt.Errorf("transport: bad hello reply from rank %d", r)
				}
			} else {
				herr = fmt.Errorf("transport: hello to rank %d: %w", r, herr)
			}
			if herr == nil {
				conn.SetDeadline(time.Time{})
				t.register(r, conn, br)
				return nil
			}
			conn.Close()
			// A rejoining replacement can race the peer's teardown of the
			// old incarnation's connection; keep redialing until the
			// deadline.  On initial mesh formation a hello failure is a
			// configuration error and aborts immediately.
			if !t.cfg.Rejoin {
				return herr
			}
			if debugTCP {
				fmt.Fprintf(os.Stderr, "tcpdbg: %d rank %d: redialing %d: %v\n", time.Now().UnixMilli()%1000000, t.cfg.Rank, r, herr)
			}
			err = herr
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: dial rank %d (%s): %w", r, t.cfg.Addrs[r], err)
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

func (t *TCP) writeHello(conn net.Conn) error {
	f := Frame{Kind: KindHello, WorldID: t.cfg.WorldID, Rank: int32(t.cfg.Rank),
		WSize: int32(t.cfg.Size), Epoch: t.epoch.Load()}
	_, err := conn.Write(EncodeFrame(nil, &f))
	return err
}

// register installs a completed connection in the pool and starts its
// reader.  A connection arriving while the slot is still occupied evicts
// the old one: a peer only ever redials after its previous incarnation
// died, so the newcomer's valid hello proves the occupant is a zombie
// whose EOF simply has not been read yet — eviction tears it down through
// peerGone (firing the down callback, which IS the failure detection on
// this path) and then installs the replacement.  A connection filling a
// torn-down slot is a peer rejoining — the per-link reliability state
// restarts from zero with the new connection generation, and the Up
// callback reports the reconnection.
func (t *TCP) register(rank int, conn net.Conn, br *bufio.Reader) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	p := t.peers[rank]
	p.wmu.Lock()
	for p.conn != nil && !t.closed.Load() {
		gen := p.gen
		p.wmu.Unlock()
		t.peerGone(p, gen, "evicted by replacement connection")
		p.wmu.Lock()
	}
	if t.closed.Load() {
		p.wmu.Unlock()
		conn.Close()
		return
	}
	rejoined := p.gen > 0
	if debugTCP {
		fmt.Fprintf(os.Stderr, "tcpdbg: %d rank %d: peer %d registered gen %d (rejoined=%v)\n", time.Now().UnixMilli()%1000000, t.cfg.Rank, rank, p.gen+1, rejoined)
	}
	p.gen++
	gen := p.gen
	p.conn = conn
	p.seq.Store(0) // fresh link: reliable sequences and the dedup line restart
	p.alive.Store(true)
	p.suspect.Store(false)
	p.wmu.Unlock()
	p.lastHeard.Store(time.Now().UnixNano())
	t.mu.Lock()
	t.connected++
	t.connCond.Broadcast()
	t.mu.Unlock()
	if h := t.health.Load(); rejoined && !t.closed.Load() && h != nil && h.Up != nil {
		p.liveMu.Lock()
		if debugTCP {
			fmt.Fprintf(os.Stderr, "tcpdbg: %d rank %d: peer %d up\n", time.Now().UnixMilli()%1000000, t.cfg.Rank, rank)
		}
		h.Up(rank)
		p.liveMu.Unlock()
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(p, br, gen)
	}()
}

// readFrame reads one whole frame from br into a pooled buffer and decodes
// it.  The returned frame's payload aliases the pooled buffer; the caller
// copies what it keeps and the buffer is recycled here... except Payload,
// which readLoop copies before release.
func (t *TCP) readFrame(br *bufio.Reader) (Frame, error) {
	var prefix [framePrefixLen]byte
	if _, err := io.ReadFull(br, prefix[:]); err != nil {
		return Frame{}, err
	}
	n := int(binary.LittleEndian.Uint32(prefix[:]))
	if n < 1+frameTrailerLen || n > t.cfg.MaxFrame {
		return Frame{}, ErrFrameLength
	}
	buf := datatype.GetBuffer(framePrefixLen + n)
	copy(buf, prefix[:])
	if _, err := io.ReadFull(br, buf[framePrefixLen:]); err != nil {
		datatype.PutBuffer(buf)
		return Frame{}, err
	}
	f, _, err := DecodeFrame(buf, t.cfg.MaxFrame)
	if err != nil {
		datatype.PutBuffer(buf)
		return Frame{}, err
	}
	t.stats.bytesRecv.Add(int64(framePrefixLen + n))
	// Hand the payload over in its own pooled buffer so the frame buffer
	// can be recycled and the receiver can free the payload independently.
	if f.Kind == KindData {
		payload := datatype.GetBuffer(len(f.Payload))
		copy(payload, f.Payload)
		f.Payload = payload
	}
	datatype.PutBuffer(buf)
	return f, nil
}

// readLoop drains one peer connection: data frames are deduplicated,
// acknowledged (when reliable) and delivered; acks complete pending
// reliable sends; beats refresh the failure detector; CRC-rejected frames
// are dropped where the retransmission protocol will recover them.  The
// inbound dedup line is per connection — a rejoined peer restarts at
// sequence zero on its fresh connection.
func (t *TCP) readLoop(p *tcpPeer, br *bufio.Reader, gen uint64) {
	var next uint64 // next inbound reliable sequence expected
	for {
		f, err := t.readFrame(br)
		if err == ErrChecksum {
			// Even a damaged frame proves the peer's process is producing
			// bytes; count it as liveness.
			p.lastHeard.Store(time.Now().UnixNano())
			t.stats.crcRejects.Add(1)
			if now, ok := t.traceNow(); ok {
				t.trace("tcp_crc_reject", p.rank, 0, now, now)
			}
			continue
		}
		if err != nil {
			t.peerGone(p, gen, fmt.Sprintf("read: %v", err))
			return
		}
		p.lastHeard.Store(time.Now().UnixNano())
		switch f.Kind {
		case KindData:
			t.stats.framesRecv.Add(1)
			if f.Flags&FlagReliable != 0 {
				if f.TSeq < next {
					// Duplicate of an accepted frame (injected dup or a
					// retransmission whose ack was in flight): re-ack so the
					// sender stops, discard the copy.
					t.stats.dupRejects.Add(1)
					if now, ok := t.traceNow(); ok {
						t.trace("tcp_dup_reject", p.rank, int64(len(f.Payload)), now, now)
					}
					t.sendAck(p, f.TSeq)
					datatype.PutBuffer(f.Payload)
					continue
				}
				next = f.TSeq + 1
				t.sendAck(p, f.TSeq)
			}
			if now, ok := t.traceNow(); ok {
				t.trace("tcp_recv", p.rank, int64(len(f.Payload)), now, now, IdentAttrs(f.Hdr)...)
			}
			t.deliver(t.cfg.Rank, f.Hdr, f.Payload)
		case KindAck:
			t.stats.acksRecv.Add(1)
			p.ackMu.Lock()
			if ch, ok := p.acks[f.TSeq]; ok {
				delete(p.acks, f.TSeq)
				close(ch)
			}
			p.ackMu.Unlock()
		case KindBeat:
			t.stats.beatsRecv.Add(1)
			if now, ok := t.traceNow(); ok {
				t.trace("heartbeat", p.rank, 0, now, now)
			}
			if h := t.health.Load(); h != nil && h.Beat != nil {
				h.Beat(p.rank)
			}
		default:
			// Hello after establishment: protocol violation; ignore.
			if f.Payload != nil {
				datatype.PutBuffer(f.Payload)
			}
		}
	}
}

// peerGone tears down connection generation gen to p and fires the failure
// callback.  A stale caller — the reader or a writer of an already-replaced
// connection — is a no-op, so a rejoined peer's fresh connection survives
// its predecessor's death throes.
func (t *TCP) peerGone(p *tcpPeer, gen uint64, reason string) {
	p.wmu.Lock()
	if p.gen != gen || p.conn == nil {
		p.wmu.Unlock()
		return
	}
	if debugTCP {
		fmt.Fprintf(os.Stderr, "tcpdbg: %d rank %d: peer %d gen %d gone: %s\n", time.Now().UnixMilli()%1000000, t.cfg.Rank, p.rank, gen, reason)
	}
	p.alive.Store(false)
	p.suspect.Store(false)
	p.conn.Close()
	p.conn = nil
	p.wmu.Unlock()
	// Fail any sends still waiting for acks from this peer.
	p.ackMu.Lock()
	for seq, ch := range p.acks {
		delete(p.acks, seq)
		close(ch)
	}
	p.ackMu.Unlock()
	// Deliver the failure callback only if this generation is still the
	// peer's newest: once a replacement connection registers, this death
	// belongs to a previous incarnation and reporting it would clobber the
	// rejoined peer's liveness.  liveMu makes the check-and-call atomic
	// against register's up callback.
	p.liveMu.Lock()
	defer p.liveMu.Unlock()
	p.wmu.Lock()
	stale := p.gen != gen
	p.wmu.Unlock()
	if debugTCP {
		fmt.Fprintf(os.Stderr, "tcpdbg: %d rank %d: peer %d gen %d down (stale=%v)\n", time.Now().UnixMilli()%1000000, t.cfg.Rank, p.rank, gen, stale)
	}
	if !stale && !t.closed.Load() && t.down != nil {
		t.down(p.rank)
	}
}

func (t *TCP) sendAck(p *tcpPeer, seq uint64) {
	f := Frame{Kind: KindAck, TSeq: seq}
	p.wmu.Lock()
	if p.conn != nil {
		buf := EncodeFrame(p.scratch[:0], &f)
		p.scratch = buf[:0]
		if _, err := p.conn.Write(buf); err == nil {
			t.stats.acksSent.Add(1)
			t.stats.bytesSent.Add(int64(len(buf)))
		}
	}
	p.wmu.Unlock()
}

// Send delivers hdr+payload to rank to.  Self-sends bypass the socket and
// pass the payload by reference; remote sends put it on the wire —
// zero-copy via vectored write on the clean path — and return the buffer
// to the shared pool.  With a lossy fault plan, the frame runs the
// ack/retransmission protocol described on the type.
func (t *TCP) Send(to int, hdr Header, payload []byte) error {
	// Ownership of payload passed to the transport at the call, so every
	// error return must recycle it — the early exits used to leak pooled
	// buffers under injected send failures.
	if to < 0 || to >= t.cfg.Size {
		datatype.PutBuffer(payload)
		return fmt.Errorf("transport: rank %d out of range [0,%d)", to, t.cfg.Size)
	}
	if t.closed.Load() {
		datatype.PutBuffer(payload)
		return ErrClosed
	}
	if to == t.cfg.Rank {
		t.deliver(to, hdr, payload)
		return nil
	}
	p := t.peers[to]
	if !p.alive.Load() {
		datatype.PutBuffer(payload)
		return &PeerDownError{Rank: to}
	}
	start, traced := t.traceNow()
	nbytes := int64(len(payload))
	t.inflight.Add(nbytes)
	defer t.inflight.Add(-nbytes)
	fp := t.cfg.Faults
	if fp.Lossy() {
		err := t.sendReliable(p, hdr, payload)
		if traced && err == nil {
			if end, ok := t.traceNow(); ok {
				t.trace("tcp_send", to, nbytes, start, end,
					IdentAttrs(hdr, obs.Attr{Key: "reliable", Val: "true"})...)
			}
		}
		return err
	}
	gen, err := t.writeData(p, &Frame{Kind: KindData, Hdr: hdr, Payload: payload})
	datatype.PutBuffer(payload)
	if err != nil {
		t.peerGone(p, gen, fmt.Sprintf("write: %v", err))
		return &PeerDownError{Rank: to}
	}
	t.stats.framesSent.Add(1)
	if traced {
		if end, ok := t.traceNow(); ok {
			t.trace("tcp_send", to, nbytes, start, end, IdentAttrs(hdr)...)
		}
	}
	return nil
}

// SendVectored delivers hdr plus the in-order gather of segs over user to
// rank to without ever packing them into an intermediate buffer: the clean
// path hands the gather list straight to an N-segment writev whose CRC-32
// trailer is folded incrementally across the segments.  Unlike Send, the
// caller keeps ownership of user — nothing is recycled here — and the
// memory must stay stable until SendVectored returns (the caller blocks,
// so it does).  Under a lossy fault plan the frame runs the same
// ack/retransmission protocol as Send, with copy-on-retransmit sealing:
// the frame is spilled to a private pooled image only if an attempt
// actually needs one.
func (t *TCP) SendVectored(to int, hdr Header, user []byte, segs []datatype.Segment) error {
	if to < 0 || to >= t.cfg.Size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", to, t.cfg.Size)
	}
	if t.closed.Load() {
		return ErrClosed
	}
	nbytes := 0
	for _, s := range segs {
		nbytes += s.Len
	}
	if to == t.cfg.Rank {
		// Self-send: gather into a pooled buffer the receiving handler owns,
		// exactly as if the bytes had crossed a socket.
		buf := datatype.GetBuffer(nbytes)
		off := 0
		for _, s := range segs {
			off += copy(buf[off:off+s.Len], user[s.Off:s.Off+s.Len])
		}
		t.stats.vectoredSends.Add(1)
		t.deliver(to, hdr, buf)
		return nil
	}
	p := t.peers[to]
	if !p.alive.Load() {
		return &PeerDownError{Rank: to}
	}
	t.stats.vectoredSends.Add(1)
	t.inflight.Add(int64(nbytes))
	defer t.inflight.Add(-int64(nbytes))
	start, traced := t.traceNow()
	if t.cfg.Faults.Lossy() {
		err := t.sendVectoredReliable(p, hdr, user, segs, nbytes)
		if traced && err == nil {
			if end, ok := t.traceNow(); ok {
				t.trace("tcp_send", to, int64(nbytes), start, end,
					IdentAttrs(hdr, obs.Attr{Key: "reliable", Val: "true"},
						obs.Attr{Key: "vectored", Val: "true"})...)
			}
		}
		return err
	}
	gen, err := t.writeDataSegs(p, &Frame{Kind: KindData, Hdr: hdr}, user, segs, nbytes)
	if err != nil {
		t.peerGone(p, gen, fmt.Sprintf("vectored write: %v", err))
		return &PeerDownError{Rank: to}
	}
	t.stats.framesSent.Add(1)
	if traced {
		if end, ok := t.traceNow(); ok {
			t.trace("tcp_send", to, int64(nbytes), start, end,
				IdentAttrs(hdr, obs.Attr{Key: "vectored", Val: "true"})...)
		}
	}
	return nil
}

// sendVectoredReliable runs the ack/retransmission protocol for a gather-
// list frame.  The first clean attempt goes out zero-copy straight from
// the caller's memory; the frame is sealed — gathered and encoded into a
// private pooled buffer — lazily, the first time an attempt needs a stable
// image (injected corruption, duplication, or a retransmit).  A send that
// succeeds on the first try therefore never copies the payload at all.
func (t *TCP) sendVectoredReliable(p *tcpPeer, hdr Header, user []byte, segs []datatype.Segment, nbytes int) error {
	fp := t.cfg.Faults
	seq := p.seq.Add(1) - 1
	f := Frame{Kind: KindData, TSeq: seq, Flags: FlagReliable, Hdr: hdr}

	var wire []byte
	seal := func() []byte {
		if wire != nil {
			return wire
		}
		// Gather the payload, encode the full frame into a pooled buffer
		// sized so EncodeFrame cannot reallocate (pow2 class round-up), and
		// release the gather scratch immediately.
		buf := datatype.GetBuffer(nbytes)
		off := 0
		for _, s := range segs {
			off += copy(buf[off:off+s.Len], user[s.Off:s.Off+s.Len])
		}
		f.Payload = buf
		wbuf := datatype.GetBuffer(framePrefixLen + dataHeadLen + nbytes + frameTrailerLen)
		wire = EncodeFrame(wbuf[:0], &f)
		f.Payload = nil
		datatype.PutBuffer(buf)
		t.stats.sealSpills.Add(1)
		return wire
	}
	defer func() {
		if wire != nil {
			datatype.PutBuffer(wire)
		}
	}()

	timeout := t.cfg.AckTimeout
	for attempt := 0; ; attempt++ {
		if t.closed.Load() {
			return ErrClosed
		}
		ack := make(chan struct{})
		p.ackMu.Lock()
		p.acks[seq] = ack
		p.ackMu.Unlock()

		drop, dup, corrupt, delay := fp.Attempt(t.cfg.Rank, p.rank, seq, attempt)
		if delay > 0 {
			time.Sleep(time.Duration(delay * float64(time.Second)))
		}
		var werr error
		var wgen uint64
		switch {
		case drop:
			t.stats.dropped.Add(1)
		case corrupt:
			bad := append([]byte(nil), seal()...)
			off := framePrefixLen + fp.CorruptByte(t.cfg.Rank, p.rank, seq, attempt, len(bad)-framePrefixLen)
			bad[off] ^= 0xFF
			t.stats.corrupted.Add(1)
			wgen, werr = t.writeWire(p, bad)
		case attempt == 0 && !dup && wire == nil:
			// The zero-copy fast path: gather straight from user memory.
			wgen, werr = t.writeDataSegs(p, &f, user, segs, nbytes)
		default:
			wgen, werr = t.writeWire(p, seal())
			if werr == nil && dup {
				t.stats.duplicated.Add(1)
				wgen, werr = t.writeWire(p, wire)
			}
		}
		if werr == nil && !drop {
			t.stats.framesSent.Add(1)
		}
		if werr != nil {
			t.peerGone(p, wgen, fmt.Sprintf("reliable vectored write: %v", werr))
			return &PeerDownError{Rank: p.rank}
		}

		select {
		case <-ack:
			if !p.alive.Load() {
				return &PeerDownError{Rank: p.rank}
			}
			return nil
		case <-time.After(timeout):
		}
		p.ackMu.Lock()
		_, pending := p.acks[seq]
		delete(p.acks, seq)
		p.ackMu.Unlock()
		if !pending {
			if !p.alive.Load() {
				return &PeerDownError{Rank: p.rank}
			}
			return nil
		}
		if attempt+1 >= t.cfg.MaxRetries {
			return &RetriesError{Rank: p.rank, Attempts: attempt + 1}
		}
		t.stats.retransmits.Add(1)
		if now, ok := t.traceNow(); ok {
			t.trace("tcp_retransmit", p.rank, int64(nbytes), now, now,
				obs.Attr{Key: "attempt", Val: strconv.Itoa(attempt + 1)})
		}
		timeout = time.Duration(float64(timeout) * t.cfg.Backoff)
	}
}

// writeData writes a data frame without copying the payload: the frame
// head and CRC trailer are assembled in the peer's scratch buffer and the
// pieces go out in one vectored write.  It returns the connection
// generation written to, for a failure-path peerGone.
func (t *TCP) writeData(p *tcpPeer, f *Frame) (uint64, error) {
	return t.writeDataSegs(p, f, f.Payload, []datatype.Segment{{Off: 0, Len: len(f.Payload)}}, len(f.Payload))
}

// writeDataSegs is the N-segment generalization of the vectored data
// write: the frame head and CRC trailer are assembled in the peer's
// scratch buffer, the CRC-32 trailer is folded incrementally across the
// gather segments, and head + segments + trailer go to the socket in a
// single writev with no intermediate copy of the payload.  nbytes is the
// segments' total length (precomputed by the caller); zero-length segments
// are skipped.  f.Payload is ignored — user/segs describe the payload.
func (t *TCP) writeDataSegs(p *tcpPeer, f *Frame, user []byte, segs []datatype.Segment, nbytes int) (uint64, error) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.conn == nil {
		return p.gen, ErrPeerDown
	}
	head := p.scratch[:0]
	head = append(head, 0, 0, 0, 0)
	head = append(head, KindData)
	var b [9]byte
	binary.LittleEndian.PutUint64(b[0:], f.TSeq)
	b[8] = f.Flags
	head = append(head, b[:]...)
	head = appendHeader(head, &f.Hdr)
	binary.LittleEndian.PutUint32(head[0:], uint32(len(head)-framePrefixLen+nbytes+frameTrailerLen))
	sum := crc32.ChecksumIEEE(head[framePrefixLen:])
	p.scratch = head[:0]

	bufs := append(p.vecbuf[:0], head)
	for _, s := range segs {
		if s.Len == 0 {
			continue
		}
		seg := user[s.Off : s.Off+s.Len]
		sum = crc32.Update(sum, crc32.IEEETable, seg)
		bufs = append(bufs, seg)
	}
	var trailer [frameTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	bufs = append(bufs, trailer[:])

	nb := net.Buffers(bufs)
	n, err := nb.WriteTo(p.conn)
	// Keep the backing array for the next write, but drop the buffer
	// references so user memory is not retained between sends.
	for i := range bufs {
		bufs[i] = nil
	}
	p.vecbuf = bufs[:0]
	t.stats.bytesSent.Add(n)
	return p.gen, err
}

// sendReliable runs the ack/retransmission protocol for one frame, with
// the fault plan injected below framing on every attempt.
func (t *TCP) sendReliable(p *tcpPeer, hdr Header, payload []byte) error {
	defer datatype.PutBuffer(payload)
	fp := t.cfg.Faults
	seq := p.seq.Add(1) - 1
	f := Frame{Kind: KindData, TSeq: seq, Flags: FlagReliable, Hdr: hdr, Payload: payload}

	// The encoded frame is built once; corruption flips a byte of a copy.
	wire := EncodeFrame(nil, &f)
	timeout := t.cfg.AckTimeout
	for attempt := 0; ; attempt++ {
		if t.closed.Load() {
			return ErrClosed
		}
		ack := make(chan struct{})
		p.ackMu.Lock()
		p.acks[seq] = ack
		p.ackMu.Unlock()

		drop, dup, corrupt, delay := fp.Attempt(t.cfg.Rank, p.rank, seq, attempt)
		if delay > 0 {
			time.Sleep(time.Duration(delay * float64(time.Second)))
		}
		var werr error
		var wgen uint64
		switch {
		case drop:
			t.stats.dropped.Add(1)
		case corrupt:
			bad := append([]byte(nil), wire...)
			// Flip a body or trailer byte — never the length prefix, which
			// framing does not protect and which would desynchronize the
			// stream rather than exercise the CRC path.
			off := framePrefixLen + fp.CorruptByte(t.cfg.Rank, p.rank, seq, attempt, len(bad)-framePrefixLen)
			bad[off] ^= 0xFF
			t.stats.corrupted.Add(1)
			wgen, werr = t.writeWire(p, bad)
		default:
			wgen, werr = t.writeWire(p, wire)
			if werr == nil && dup {
				t.stats.duplicated.Add(1)
				wgen, werr = t.writeWire(p, wire)
			}
		}
		if werr == nil && !drop {
			t.stats.framesSent.Add(1)
		}
		if werr != nil {
			t.peerGone(p, wgen, fmt.Sprintf("reliable write: %v", werr))
			return &PeerDownError{Rank: p.rank}
		}

		select {
		case <-ack:
			// Closed by the reader on ack — or by peerGone on failure.
			if !p.alive.Load() {
				return &PeerDownError{Rank: p.rank}
			}
			return nil
		case <-time.After(timeout):
		}
		p.ackMu.Lock()
		_, pending := p.acks[seq]
		delete(p.acks, seq)
		p.ackMu.Unlock()
		if !pending {
			// The ack raced the timeout; it was accepted.
			if !p.alive.Load() {
				return &PeerDownError{Rank: p.rank}
			}
			return nil
		}
		if attempt+1 >= t.cfg.MaxRetries {
			return &RetriesError{Rank: p.rank, Attempts: attempt + 1}
		}
		t.stats.retransmits.Add(1)
		if now, ok := t.traceNow(); ok {
			t.trace("tcp_retransmit", p.rank, int64(len(payload)), now, now,
				obs.Attr{Key: "attempt", Val: strconv.Itoa(attempt + 1)})
		}
		timeout = time.Duration(float64(timeout) * t.cfg.Backoff)
	}
}

func (t *TCP) writeWire(p *tcpPeer, wire []byte) (uint64, error) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.conn == nil {
		return p.gen, ErrPeerDown
	}
	n, err := p.conn.Write(wire)
	t.stats.bytesSent.Add(int64(n))
	return p.gen, err
}

// heartbeatLoop is the failure detector: every interval it beats each
// connected peer and scores how long each has been silent.  Suspicion
// (recoverable) comes before hard failure, so the layer above can surface a
// typed "rank suspect" condition while the peer might still be merely slow;
// a peer silent past FailAfter intervals is declared down even though its
// connection is open — the hung-process case no close event ever covers.
func (t *TCP) heartbeatLoop() {
	defer t.wg.Done()
	hb := t.cfg.Heartbeat
	tick := time.NewTicker(hb.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.hbStop:
			return
		case <-tick.C:
		}
		paused := t.beatsPaused.Load()
		now := time.Now()
		for _, p := range t.peers {
			if p.rank == t.cfg.Rank || !p.alive.Load() {
				continue
			}
			if !paused {
				t.sendBeat(p)
			}
			silent := now.Sub(time.Unix(0, p.lastHeard.Load()))
			missed := int(silent / hb.Interval)
			switch {
			case missed >= hb.FailAfter:
				if wnow, ok := t.traceNow(); ok {
					t.trace("suspect", p.rank, 0, wnow, wnow,
						obs.Attr{Key: "hard", Val: "true"},
						obs.Attr{Key: "silent", Val: silent.String()})
				}
				p.wmu.Lock()
				gen := p.gen
				p.wmu.Unlock()
				t.peerGone(p, gen, fmt.Sprintf("heartbeat hard-failure after %v silence", silent))
			case missed >= hb.Miss:
				if p.suspect.CompareAndSwap(false, true) {
					if wnow, ok := t.traceNow(); ok {
						t.trace("suspect", p.rank, 0, wnow, wnow,
							obs.Attr{Key: "silent", Val: silent.String()})
					}
					if h := t.health.Load(); h != nil && h.Suspect != nil {
						h.Suspect(p.rank, true, silent)
					}
				}
			default:
				if p.suspect.CompareAndSwap(true, false) {
					if h := t.health.Load(); h != nil && h.Suspect != nil {
						h.Suspect(p.rank, false, silent)
					}
				}
			}
		}
	}
}

// sendBeat writes one heartbeat.  TryLock: a data write already in flight
// proves liveness on its own, and a writer blocked on a wedged peer must
// not wedge the detector with it — detection reads only lastHeard.
func (t *TCP) sendBeat(p *tcpPeer) {
	if !p.wmu.TryLock() {
		return
	}
	defer p.wmu.Unlock()
	if p.conn == nil {
		return
	}
	f := Frame{Kind: KindBeat, Epoch: t.epoch.Load()}
	buf := EncodeFrame(p.scratch[:0], &f)
	p.scratch = buf[:0]
	p.conn.SetWriteDeadline(time.Now().Add(t.cfg.Heartbeat.Interval))
	if _, err := p.conn.Write(buf); err == nil {
		t.stats.beatsSent.Add(1)
		t.stats.bytesSent.Add(int64(len(buf)))
	}
	p.conn.SetWriteDeadline(time.Time{})
}

// Close tears the endpoint down: the listener and every pooled connection
// are closed and the reader goroutines drained.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.hbStop)
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range t.peers {
		p.wmu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.wmu.Unlock()
	}
	t.wg.Wait()
	return nil
}

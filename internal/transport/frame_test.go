package transport

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func randomDataFrame(rng *rand.Rand) Frame {
	payload := make([]byte, rng.Intn(1<<12))
	rng.Read(payload)
	return Frame{
		Kind:  KindData,
		TSeq:  rng.Uint64(),
		Flags: byte(rng.Intn(2)),
		Hdr: Header{
			Ctx:      rng.Uint64(),
			Src:      int32(rng.Intn(1 << 20)),
			Tag:      int32(rng.Intn(1 << 20)),
			Arrival:  rng.NormFloat64(),
			Reliable: rng.Intn(2) == 1,
			WSrc:     int32(rng.Intn(1 << 20)),
			Seq:      rng.Uint64(),
			Sum:      rng.Uint32(),
			MSeq:     rng.Uint64(),
		},
		Payload: payload,
	}
}

func framesEqual(a, b *Frame) bool {
	return a.Kind == b.Kind && a.TSeq == b.TSeq && a.Flags == b.Flags &&
		a.Hdr == b.Hdr && bytes.Equal(a.Payload, b.Payload) &&
		a.WorldID == b.WorldID && a.Rank == b.Rank && a.WSize == b.WSize &&
		a.Epoch == b.Epoch
}

// TestFrameRoundTrip is the codec property: decode(encode(f)) == f for
// random data frames, and consumed length equals the encoding's length.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 500; i++ {
		f := randomDataFrame(rng)
		wire := EncodeFrame(nil, &f)
		got, n, err := DecodeFrame(wire, 0)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if n != len(wire) {
			t.Fatalf("iter %d: consumed %d of %d bytes", i, n, len(wire))
		}
		if !framesEqual(&got, &f) {
			t.Fatalf("iter %d: round-trip mismatch", i)
		}
	}
}

func TestFrameRoundTripControl(t *testing.T) {
	for _, f := range []Frame{
		{Kind: KindHello, WorldID: 0xdeadbeef, Rank: 3, WSize: 8},
		{Kind: KindHello, WorldID: 1, Rank: 0, WSize: 4, Epoch: 1<<40 + 9},
		{Kind: KindAck, TSeq: 1<<63 + 17},
		{Kind: KindBeat, Epoch: 42},
		{Kind: KindData, TSeq: 0, Hdr: Header{}, Payload: nil},
	} {
		wire := EncodeFrame(nil, &f)
		got, n, err := DecodeFrame(wire, 0)
		if err != nil || n != len(wire) {
			t.Fatalf("kind %d: decode err=%v n=%d len=%d", f.Kind, err, n, len(wire))
		}
		// Decoded empty payloads come back as empty subslices, not nil.
		if len(got.Payload) == 0 {
			got.Payload = nil
		}
		if !framesEqual(&got, &f) {
			t.Fatalf("kind %d: round-trip mismatch: %+v vs %+v", f.Kind, got, f)
		}
	}
}

// TestFrameTruncation: every strict prefix of a valid frame must decode to
// ErrShortFrame (more bytes needed), never to a bogus success.
func TestFrameTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := randomDataFrame(rng)
	wire := EncodeFrame(nil, &f)
	for cut := 0; cut < len(wire); cut++ {
		_, _, err := DecodeFrame(wire[:cut], 0)
		if err != ErrShortFrame && err != ErrFrameLength {
			t.Fatalf("prefix of %d/%d bytes: got err %v, want short-frame", cut, len(wire), err)
		}
		if cut >= framePrefixLen && err == ErrFrameLength {
			t.Fatalf("prefix of %d/%d bytes with intact length field decoded as bad length", cut, len(wire))
		}
	}
}

// TestFrameCorruptLengthPrefix: damaged length prefixes are rejected by the
// sanity bounds — zero, too small for any body, or beyond the frame cap.
func TestFrameCorruptLengthPrefix(t *testing.T) {
	f := Frame{Kind: KindAck, TSeq: 9}
	wire := EncodeFrame(nil, &f)
	for _, n := range []uint32{0, 1, 4, 1<<31 - 1, 1 << 30} {
		bad := append([]byte(nil), wire...)
		binary.LittleEndian.PutUint32(bad, n)
		if _, _, err := DecodeFrame(bad, 0); err != ErrFrameLength {
			t.Fatalf("length prefix %d: got %v, want ErrFrameLength", n, err)
		}
	}
	// A plausible-but-larger length must read as truncation, not success.
	bad := append([]byte(nil), wire...)
	binary.LittleEndian.PutUint32(bad, uint32(len(wire)-framePrefixLen+8))
	if _, _, err := DecodeFrame(bad, 0); err != ErrShortFrame {
		t.Fatalf("inflated length: got %v, want ErrShortFrame", err)
	}
}

// TestFrameCRCTrailerRejects: flipping any single byte after the length
// prefix must fail the checksum (or, for kind/length-bearing bytes, decode
// as malformed) — never return a frame whose contents differ silently.
func TestFrameCRCTrailerRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomDataFrame(rng)
	f.Payload = f.Payload[:64]
	wire := EncodeFrame(nil, &f)
	for off := framePrefixLen; off < len(wire); off++ {
		bad := append([]byte(nil), wire...)
		bad[off] ^= 0xFF
		got, _, err := DecodeFrame(bad, 0)
		if err == ErrChecksum {
			continue
		}
		if err == nil && framesEqual(&got, &f) {
			t.Fatalf("flip at %d: decoded identical frame without error", off)
		}
		if err == nil {
			t.Fatalf("flip at %d: silently decoded altered frame", off)
		}
	}
}

// FuzzDecodeFrame feeds arbitrary bytes and encodings with random damage to
// the decoder: it must never panic, and any successful decode must
// re-encode to semantically identical bytes (payload aside, which aliases
// the input).
func FuzzDecodeFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		fr := randomDataFrame(rng)
		f.Add(EncodeFrame(nil, &fr))
	}
	f.Add(EncodeFrame(nil, &Frame{Kind: KindHello, WorldID: 5, Rank: 1, WSize: 4, Epoch: 2}))
	f.Add(EncodeFrame(nil, &Frame{Kind: KindAck, TSeq: 3}))
	f.Add(EncodeFrame(nil, &Frame{Kind: KindBeat, Epoch: 7}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, 1<<20)
		if err != nil {
			return
		}
		if n < 1+framePrefixLen+frameTrailerLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		re := EncodeFrame(nil, &fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
	})
}

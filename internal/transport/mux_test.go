package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"nccd/internal/datatype"
)

// startMuxMesh brings up an n-rank localhost TCP mesh with a Mux owning
// each endpoint — the service-daemon topology, in one process.
func startMuxMesh(t *testing.T, n int) []*Mux {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	muxes := make([]*Mux, n)
	for r := 0; r < n; r++ {
		tcp, err := NewTCP(TCPConfig{
			Rank: r, Size: n, WorldID: 0xddc, Addrs: addrs, Listener: lns[r],
			AckTimeout: 50 * time.Millisecond, DialTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		muxes[r] = NewMux(tcp)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = muxes[r].Start()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("start rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range muxes {
			m.Close()
		}
	})
	return muxes
}

// subRec records one Sub's deliveries and failure events.
type subRec struct {
	mu   sync.Mutex
	msgs []meshMsg
	down []int
}

func (r *subRec) handler(to int, hdr Header, payload []byte) {
	cp := append([]byte(nil), payload...)
	if payload != nil {
		datatype.PutBuffer(payload)
	}
	r.mu.Lock()
	r.msgs = append(r.msgs, meshMsg{Hdr: hdr, Payload: cp})
	r.mu.Unlock()
}

func (r *subRec) onDown(rank int) {
	r.mu.Lock()
	r.down = append(r.down, rank)
	r.mu.Unlock()
}

func (r *subRec) get() []meshMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]meshMsg(nil), r.msgs...)
}

func (r *subRec) downs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.down...)
}

func startSub(t *testing.T, m *Mux, job uint64, ranks []int) (*Sub, *subRec) {
	t.Helper()
	s, err := m.Sub(job, ranks)
	if err != nil {
		t.Fatalf("sub job %d: %v", job, err)
	}
	rec := &subRec{}
	if err := s.Start(rec.handler, rec.onDown); err != nil {
		t.Fatalf("start sub job %d: %v", job, err)
	}
	return s, rec
}

// TestMuxJobIsolation: two jobs with opposite rank mappings share one mesh;
// each sub sees only its own frames, in job-relative numbering, with the
// job id stamped on the wire.
func TestMuxJobIsolation(t *testing.T) {
	muxes := startMuxMesh(t, 2)

	subA0, _ := startSub(t, muxes[0], 7, []int{0, 1})
	_, recA1 := startSub(t, muxes[1], 7, []int{0, 1})
	subB0, _ := startSub(t, muxes[1], 9, []int{1, 0}) // job rank 0 = mesh 1
	_, recB1 := startSub(t, muxes[0], 9, []int{1, 0})

	if err := subA0.Send(1, Header{Ctx: 1, Src: 0, Tag: 11}, payloadFor(0, 1)); err != nil {
		t.Fatalf("job 7 send: %v", err)
	}
	if err := subB0.Send(1, Header{Ctx: 1, Src: 0, Tag: 22}, payloadFor(1, 0)); err != nil {
		t.Fatalf("job 9 send: %v", err)
	}
	waitFor(t, "both deliveries", func() bool { return len(recA1.get()) == 1 && len(recB1.get()) == 1 })

	a := recA1.get()[0]
	if a.Hdr.Job != 7 || a.Hdr.Tag != 11 {
		t.Fatalf("job 7 frame arrived as job %d tag %d", a.Hdr.Job, a.Hdr.Tag)
	}
	b := recB1.get()[0]
	if b.Hdr.Job != 9 || b.Hdr.Tag != 22 {
		t.Fatalf("job 9 frame arrived as job %d tag %d", b.Hdr.Job, b.Hdr.Tag)
	}
	if muxes[0].JobDropped()+muxes[1].JobDropped() != 0 {
		t.Fatalf("frames dropped on a healthy two-job mesh")
	}
}

// TestMuxHeldFrames: a frame for a job whose Sub is not yet registered on
// the receiver is parked and flushed, intact, when the Sub starts.
func TestMuxHeldFrames(t *testing.T) {
	muxes := startMuxMesh(t, 2)
	subA0, _ := startSub(t, muxes[0], 3, []int{0, 1})

	want := payloadFor(0, 1)
	wantCopy := append([]byte(nil), want...)
	if err := subA0.Send(1, Header{Ctx: 1, Src: 0, Tag: 5}, want); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The frame has nowhere to go on rank 1 yet; it must be parked, not
	// dropped.
	waitFor(t, "frame parked", func() bool {
		muxes[1].mu.Lock()
		defer muxes[1].mu.Unlock()
		return len(muxes[1].held[3]) == 1
	})
	if got := muxes[1].HeldDropped() + muxes[1].JobDropped(); got != 0 {
		t.Fatalf("%d frames dropped while the sub was pending", got)
	}

	_, rec := startSub(t, muxes[1], 3, []int{0, 1})
	waitFor(t, "held frame flushed", func() bool { return len(rec.get()) == 1 })
	got := rec.get()[0]
	if string(got.Payload) != string(wantCopy) {
		t.Fatalf("held frame corrupted in the park/flush cycle")
	}
}

// TestMuxTombstone: a released job id drops stragglers and can never be
// reused.
func TestMuxTombstone(t *testing.T) {
	muxes := startMuxMesh(t, 2)
	subA0, _ := startSub(t, muxes[0], 3, []int{0, 1})
	subA1, _ := startSub(t, muxes[1], 3, []int{0, 1})

	if err := subA1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := subA0.Send(1, Header{Ctx: 1, Src: 0, Tag: 5}, payloadFor(0, 1)); err != nil {
		t.Fatalf("send: %v", err)
	}
	waitFor(t, "straggler dropped by id", func() bool { return muxes[1].JobDropped() == 1 })

	if _, err := muxes[1].Sub(3, []int{0, 1}); err == nil {
		t.Fatalf("released job id was handed out again")
	}
	if _, err := muxes[1].Sub(0, []int{0, 1}); err == nil {
		t.Fatalf("job id 0 (unmultiplexed marker) was accepted")
	}
}

// TestMuxDownFanoutFiltered: a mesh rank death reaches exactly the jobs
// mapped onto it — translated to the job-relative rank — plus the
// service-level observers with the real rank.
func TestMuxDownFanoutFiltered(t *testing.T) {
	muxes := startMuxMesh(t, 3)

	var obsMu sync.Mutex
	var observed []int
	muxes[0].OnPeerDown(func(r int) {
		obsMu.Lock()
		observed = append(observed, r)
		obsMu.Unlock()
	})

	_, recX := startSub(t, muxes[0], 4, []int{0, 1}) // avoids rank 2
	_, recY := startSub(t, muxes[0], 6, []int{0, 2}) // spans rank 2

	muxes[2].Close() // rank 2 dies

	waitFor(t, "service observer saw the death", func() bool {
		obsMu.Lock()
		defer obsMu.Unlock()
		for _, r := range observed {
			if r == 2 {
				return true
			}
		}
		return false
	})
	waitFor(t, "mapped job notified", func() bool {
		d := recY.downs()
		return len(d) == 1 && d[0] == 1 // real rank 2 = job 6's rank 1
	})
	if d := recX.downs(); len(d) != 0 {
		t.Fatalf("job 4 (not mapped onto rank 2) got down events %v", d)
	}
	if !muxes[0].PeerAlive(1) || muxes[0].PeerAlive(2) {
		t.Fatalf("PeerAlive view wrong: alive(1)=%v alive(2)=%v", muxes[0].PeerAlive(1), muxes[0].PeerAlive(2))
	}
}

package transport

import (
	"sync"
	"testing"

	"nccd/internal/datatype"
	"nccd/internal/obs"
	"nccd/internal/simnet"
)

// ex49Segments is the degenerate gather shape a DMDA corner rank produces
// in the elasticity example: zero-length entries, single-byte fragments and
// multi-KiB runs interleaved in one type map.
func ex49Segments() []datatype.Segment {
	return []datatype.Segment{
		{Off: 0, Len: 0},
		{Off: 0, Len: 1},
		{Off: 64, Len: 4096},
		{Off: 4500, Len: 0},
		{Off: 4503, Len: 1},
		{Off: 4600, Len: 8192},
		{Off: 13000, Len: 2},
		{Off: 13500, Len: 0},
		{Off: 13507, Len: 1},
		{Off: 14000, Len: 2048},
	}
}

func vectoredUser(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + 17)
	}
	return b
}

func gatherReference(user []byte, segs []datatype.Segment) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, user[s.Off:s.Off+s.Len]...)
	}
	return out
}

// TestSendVectoredDegenerate: the ex49 gather shape crosses a clean TCP
// link — and the self-send path — bitwise intact, counted as vectored.
func TestSendVectoredDegenerate(t *testing.T) {
	eps, rec := startMesh(t, 2, nil, nil)
	segs := ex49Segments()
	user := vectoredUser(16384)
	want := gatherReference(user, segs)

	if err := eps[0].SendVectored(1, Header{Ctx: 1, Src: 0, Tag: 7}, user, segs); err != nil {
		t.Fatalf("vectored send: %v", err)
	}
	if err := eps[0].SendVectored(0, Header{Ctx: 1, Src: 0, Tag: 8}, user, segs); err != nil {
		t.Fatalf("vectored self-send: %v", err)
	}
	waitFor(t, "remote delivery", func() bool { return len(rec.get(1)) == 1 })
	waitFor(t, "self delivery", func() bool { return len(rec.get(0)) == 1 })
	for _, check := range []struct {
		rank int
		tag  int32
	}{{1, 7}, {0, 8}} {
		m := rec.get(check.rank)[0]
		if m.Hdr.Tag != check.tag {
			t.Fatalf("rank %d: tag %d, want %d", check.rank, m.Hdr.Tag, check.tag)
		}
		if len(m.Payload) != len(want) {
			t.Fatalf("rank %d: %d bytes, want %d", check.rank, len(m.Payload), len(want))
		}
		for i := range want {
			if m.Payload[i] != want[i] {
				t.Fatalf("rank %d: payload byte %d = %#x, want %#x", check.rank, i, m.Payload[i], want[i])
			}
		}
	}
	if got := eps[0].Stats().VectoredSends; got != 2 {
		t.Fatalf("VectoredSends = %d, want 2", got)
	}
	if got := eps[0].Stats().SealSpills; got != 0 {
		t.Fatalf("clean vectored sends spilled %d seals, want 0", got)
	}
}

// TestSendVectoredLossy: the same degenerate shape under a seeded lossy
// fault plan arrives exactly once and bitwise intact, the reliability
// protocol visibly fired, and at least one frame was sealed into a private
// copy for retransmission (copy-on-retransmit actually engaged).
func TestSendVectoredLossy(t *testing.T) {
	fp := &simnet.FaultPlan{Seed: 7, Drop: 0.1, Corrupt: 0.1, Duplicate: 0.05}
	eps, rec := startMesh(t, 2, fp, nil)
	segs := ex49Segments()
	user := vectoredUser(16384)
	want := gatherReference(user, segs)

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			hdr := Header{Ctx: 1, Src: 0, Tag: int32(i)}
			if err := eps[0].SendVectored(1, hdr, user, segs); err != nil {
				t.Errorf("vectored send %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	waitFor(t, "lossy vectored delivery", func() bool { return len(rec.get(1)) == rounds })
	seen := map[int32]bool{}
	for _, m := range rec.get(1) {
		if seen[m.Hdr.Tag] {
			t.Fatalf("tag %d delivered twice", m.Hdr.Tag)
		}
		seen[m.Hdr.Tag] = true
		if len(m.Payload) != len(want) {
			t.Fatalf("tag %d: %d bytes, want %d", m.Hdr.Tag, len(m.Payload), len(want))
		}
		for i := range want {
			if m.Payload[i] != want[i] {
				t.Fatalf("tag %d: payload byte %d mismatch", m.Hdr.Tag, i)
			}
		}
	}
	st := eps[0].Stats()
	if st.VectoredSends != rounds {
		t.Fatalf("VectoredSends = %d, want %d", st.VectoredSends, rounds)
	}
	if st.SealSpills == 0 {
		t.Fatalf("lossy run sealed no frames; copy-on-retransmit never engaged")
	}
	if st.Retransmits == 0 && st.Corrupted == 0 && st.Dropped == 0 {
		t.Fatalf("fault plan injected nothing; test is vacuous")
	}
}

// TestSendPoolBalance: pooled-buffer gets and puts stay balanced across
// clean sends, vectored sends, and every Send error path — out-of-range
// destination, send to a dead peer, send after close — which used to leak
// the payload they had taken ownership of.
func TestSendPoolBalance(t *testing.T) {
	gets := obs.Metrics.Counter("datatype.pool_gets")
	puts := obs.Metrics.Counter("datatype.pool_puts")
	eps, rec := startMesh(t, 3, nil, nil)
	base := gets.Load() - puts.Load()

	segs := ex49Segments()
	user := vectoredUser(16384)
	for i := 0; i < 8; i++ {
		if err := eps[0].Send(1, Header{Ctx: 1, Src: 0, Tag: int32(i)}, payloadFor(0, 1)); err != nil {
			t.Fatalf("send: %v", err)
		}
		if err := eps[0].SendVectored(1, Header{Ctx: 1, Src: 0, Tag: int32(100 + i)}, user, segs); err != nil {
			t.Fatalf("vectored send: %v", err)
		}
	}
	waitFor(t, "deliveries", func() bool { return len(rec.get(1)) == 16 })

	// Error paths take ownership too: each must recycle the payload.
	if err := eps[0].Send(99, Header{}, payloadFor(0, 2)); err == nil {
		t.Fatalf("out-of-range send succeeded")
	}
	eps[2].Close()
	waitFor(t, "peer 2 down", func() bool { return !eps[0].Health(2).Alive })
	if err := eps[0].Send(2, Header{}, payloadFor(0, 2)); err == nil {
		t.Fatalf("send to dead peer succeeded")
	}
	eps[0].Close()
	if err := eps[0].Send(1, Header{}, payloadFor(0, 1)); err == nil {
		t.Fatalf("send after close succeeded")
	}

	waitFor(t, "pool balance", func() bool { return gets.Load()-puts.Load() == base })
}

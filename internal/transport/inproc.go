package transport

import (
	"fmt"

	"nccd/internal/datatype"
)

// Inproc is the original in-process path refactored behind the Transport
// interface: every rank lives in this process, and Send is a synchronous
// deposit — the destination's handler runs on the sender's goroutine, with
// the payload passed by reference, exactly as the runtime's mailbox
// delivery always worked.  Virtual-time semantics (the Arrival stamp, the
// mpi layer's own fault simulation riding in the Header's reliability
// fields) pass through untouched, so worlds on this transport behave
// bit-for-bit like they did before the seam existed.
type Inproc struct {
	n       int
	deliver Handler
}

// NewInproc returns an in-process transport hosting n ranks.
func NewInproc(n int) *Inproc {
	if n < 1 {
		panic("transport: inproc world must have at least one rank")
	}
	return &Inproc{n: n}
}

// Size returns the world size.
func (t *Inproc) Size() int { return t.n }

// Local reports true for every rank: all of them live here.
func (t *Inproc) Local(r int) bool { return true }

// Wallclock reports false: this transport preserves virtual-time semantics.
func (t *Inproc) Wallclock() bool { return false }

// Start registers the delivery handler.  The failure callback is unused:
// rank lifecycle is tracked above the transport in this mode.
func (t *Inproc) Start(deliver Handler, down DownFunc) error {
	if t.deliver != nil {
		return fmt.Errorf("transport: inproc already started")
	}
	t.deliver = deliver
	return nil
}

// Send deposits the message synchronously into rank to's handler.  The
// payload is shared by reference; the receiver owns it afterwards.
func (t *Inproc) Send(to int, hdr Header, payload []byte) error {
	if to < 0 || to >= t.n {
		// Ownership passed at the call: recycle before erroring out.
		datatype.PutBuffer(payload)
		return fmt.Errorf("transport: rank %d out of range [0,%d)", to, t.n)
	}
	t.deliver(to, hdr, payload)
	return nil
}

// SendVectored gathers segs over user into one pooled buffer and deposits
// it synchronously — there is no wire to scatter onto in-process, so the
// gather is the delivery copy the receiver would otherwise have made.  The
// caller keeps ownership of user.
func (t *Inproc) SendVectored(to int, hdr Header, user []byte, segs []datatype.Segment) error {
	if to < 0 || to >= t.n {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", to, t.n)
	}
	nbytes := 0
	for _, s := range segs {
		nbytes += s.Len
	}
	buf := datatype.GetBuffer(nbytes)
	off := 0
	for _, s := range segs {
		off += copy(buf[off:off+s.Len], user[s.Off:s.Off+s.Len])
	}
	t.deliver(to, hdr, buf)
	return nil
}

// Close is a no-op.
func (t *Inproc) Close() error { return nil }

package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/obs"
)

// Hierarchical is a mixed-transport world: every peer is routed by the
// node map — co-located ranks over the intra transport (shared memory),
// remote ranks over the inter transport (TCP).  The wrapper is a pure
// router; framing, reliability, heartbeats and epochs all live in the
// wrapped endpoints.  Health callbacks are filtered per peer so each
// rank's liveness is judged only by the transport that actually carries
// its traffic: the TCP mesh still connects co-located ranks (it ignores
// the node map), and its failure detector racing the shared-memory one
// for the same peer would otherwise report a rank Up before the route
// that matters is ready.
type Hierarchical struct {
	self   int
	nodeOf []int
	intra  Transport // nil when this rank's node has no co-located peers
	inter  Transport

	vecIntra VectoredSender // nil when intra lacks the vectored path
	vecInter VectoredSender

	health atomic.Pointer[HealthFuncs]
	closed atomic.Bool
}

// NewHierarchical builds the router for the rank self.  nodeOf assigns a
// node id to every world rank; intra may be nil when self's node holds
// only itself.  Both wrapped transports must span the same world size.
func NewHierarchical(self int, nodeOf []int, intra, inter Transport) (*Hierarchical, error) {
	if inter == nil {
		return nil, fmt.Errorf("transport: hierarchical requires an inter-node transport")
	}
	if len(nodeOf) != inter.Size() {
		return nil, fmt.Errorf("transport: node map for %d ranks, inter transport for %d", len(nodeOf), inter.Size())
	}
	if self < 0 || self >= len(nodeOf) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d ranks", self, len(nodeOf))
	}
	if intra != nil && intra.Size() != inter.Size() {
		return nil, fmt.Errorf("transport: intra transport sized %d, inter %d", intra.Size(), inter.Size())
	}
	h := &Hierarchical{self: self, nodeOf: append([]int(nil), nodeOf...), intra: intra, inter: inter}
	if intra != nil {
		h.vecIntra, _ = intra.(VectoredSender)
	}
	h.vecInter, _ = inter.(VectoredSender)
	return h, nil
}

// Size returns the world size.
func (h *Hierarchical) Size() int { return len(h.nodeOf) }

// Self returns the hosted rank.
func (h *Hierarchical) Self() int { return h.self }

// Local reports whether r is the hosted rank.  Co-located ranks are
// peers, not locals: each lives in its own process (or its own World).
func (h *Hierarchical) Local(r int) bool { return r == h.self }

// Wallclock reports true: both constituent transports run in real time.
func (h *Hierarchical) Wallclock() bool { return true }

// Occupancy sums the resource gauges of both sides of the router.
func (h *Hierarchical) Occupancy() Occupancy {
	var o Occupancy
	if or, ok := h.intra.(OccupancyReporter); ok {
		o.Add(or.Occupancy())
	}
	if or, ok := h.inter.(OccupancyReporter); ok {
		o.Add(or.Occupancy())
	}
	return o
}

// NodeMap returns the node id of every world rank; the mpi layer adopts
// it as the world topology for hierarchy-aware collectives.
func (h *Hierarchical) NodeMap() []int { return append([]int(nil), h.nodeOf...) }

// sameNode reports whether rank r is co-located with self.
func (h *Hierarchical) sameNode(r int) bool { return h.nodeOf[r] == h.nodeOf[h.self] }

// route picks the transport that carries traffic to rank r.
func (h *Hierarchical) route(r int) Transport {
	if h.intra != nil && h.sameNode(r) {
		return h.intra
	}
	return h.inter
}

// Start starts both wrapped transports, fanning inbound frames from
// either into the one handler and filtering failure reports so only the
// routing transport may declare a peer dead.
func (h *Hierarchical) Start(deliver Handler, down DownFunc) error {
	intraDown := func(r int) {
		if down != nil && r != h.self && h.sameNode(r) {
			down(r)
		}
	}
	interDown := func(r int) {
		if down != nil && r != h.self && !h.sameNode(r) {
			down(r)
		}
	}
	if h.intra != nil {
		if err := h.intra.Start(deliver, intraDown); err != nil {
			return err
		}
	}
	if err := h.inter.Start(deliver, interDown); err != nil {
		if h.intra != nil {
			h.intra.Close()
		}
		return err
	}
	return nil
}

// Send routes one framed message by the node map.
func (h *Hierarchical) Send(to int, hdr Header, payload []byte) error {
	if to < 0 || to >= len(h.nodeOf) {
		datatype.PutBuffer(payload)
		return fmt.Errorf("transport: rank %d out of range [0,%d)", to, len(h.nodeOf))
	}
	return h.route(to).Send(to, hdr, payload)
}

// SendVectored routes a gather-list send by the node map, preserving the
// zero-copy path on whichever side carries it.  A route without a
// vectored fast path gets the gather packed into a pooled buffer, the
// same contract inproc honors.
func (h *Hierarchical) SendVectored(to int, hdr Header, user []byte, segs []datatype.Segment) error {
	if to < 0 || to >= len(h.nodeOf) {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", to, len(h.nodeOf))
	}
	vec := h.vecInter
	if h.intra != nil && h.sameNode(to) {
		vec = h.vecIntra
	}
	if vec != nil {
		return vec.SendVectored(to, hdr, user, segs)
	}
	n := 0
	for _, s := range segs {
		n += s.Len
	}
	buf := datatype.GetBuffer(n)
	off := 0
	for _, s := range segs {
		off += copy(buf[off:off+s.Len], user[s.Off:s.Off+s.Len])
	}
	return h.route(to).Send(to, hdr, buf)
}

// SetTracer forwards the span recorder to both endpoints.
func (h *Hierarchical) SetTracer(tr *obs.Tracer) {
	type tracered interface{ SetTracer(*obs.Tracer) }
	if t, ok := h.inter.(tracered); ok {
		t.SetTracer(tr)
	}
	if t, ok := h.intra.(tracered); ok {
		t.SetTracer(tr)
	}
}

// SetHealth installs per-peer-filtered liveness callbacks on both
// endpoints: beats, suspicion and recovery for a rank are reported only
// by the transport that routes to it.
func (h *Hierarchical) SetHealth(hf HealthFuncs) {
	h.health.Store(&hf)
	type healther interface{ SetHealth(HealthFuncs) }
	if t, ok := h.inter.(healther); ok {
		t.SetHealth(h.filterHealth(func(r int) bool { return !h.sameNode(r) }))
	}
	if t, ok := h.intra.(healther); ok {
		t.SetHealth(h.filterHealth(func(r int) bool { return h.sameNode(r) && r != h.self }))
	}
}

func (h *Hierarchical) filterHealth(want func(int) bool) HealthFuncs {
	return HealthFuncs{
		Beat: func(r int) {
			if f := h.health.Load(); f != nil && f.Beat != nil && want(r) {
				f.Beat(r)
			}
		},
		Suspect: func(r int, suspect bool, silent time.Duration) {
			if f := h.health.Load(); f != nil && f.Suspect != nil && want(r) {
				f.Suspect(r, suspect, silent)
			}
		},
		Up: func(r int) {
			if f := h.health.Load(); f != nil && f.Up != nil && want(r) {
				f.Up(r)
			}
		},
	}
}

// SetEpoch raises the membership epoch on both endpoints.
func (h *Hierarchical) SetEpoch(e uint64) {
	type epocher interface{ SetEpoch(uint64) }
	if t, ok := h.inter.(epocher); ok {
		t.SetEpoch(e)
	}
	if t, ok := h.intra.(epocher); ok {
		t.SetEpoch(e)
	}
}

// PauseHeartbeats forwards the detector pause to both endpoints.
func (h *Hierarchical) PauseHeartbeats(pause bool) {
	type pauser interface{ PauseHeartbeats(bool) }
	if t, ok := h.inter.(pauser); ok {
		t.PauseHeartbeats(pause)
	}
	if t, ok := h.intra.(pauser); ok {
		t.PauseHeartbeats(pause)
	}
}

// Intra returns the intra-node endpoint (nil for a singleton node).
func (h *Hierarchical) Intra() Transport { return h.intra }

// Inter returns the inter-node endpoint.
func (h *Hierarchical) Inter() Transport { return h.inter }

// Close closes both endpoints and reports the first error.
func (h *Hierarchical) Close() error {
	if !h.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if h.intra != nil {
		err = h.intra.Close()
	}
	if cerr := h.inter.Close(); err == nil {
		err = cerr
	}
	return err
}

package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/simnet"
)

// startMesh brings up an n-rank localhost TCP mesh in one process, using
// pre-bound listeners to avoid port races.  Each endpoint's inbound messages
// are appended to its slot of the returned recorder.
type meshMsg struct {
	Hdr     Header
	Payload []byte
}

type meshRecorder struct {
	mu   sync.Mutex
	msgs [][]meshMsg
}

func (rec *meshRecorder) handler(rank int) Handler {
	return func(to int, hdr Header, payload []byte) {
		cp := append([]byte(nil), payload...)
		if payload != nil {
			datatype.PutBuffer(payload)
		}
		rec.mu.Lock()
		rec.msgs[rank] = append(rec.msgs[rank], meshMsg{Hdr: hdr, Payload: cp})
		rec.mu.Unlock()
	}
}

func (rec *meshRecorder) get(rank int) []meshMsg {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]meshMsg(nil), rec.msgs[rank]...)
}

func startMesh(t *testing.T, n int, fp *simnet.FaultPlan, down DownFunc) ([]*TCP, *meshRecorder) {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	eps := make([]*TCP, n)
	for r := 0; r < n; r++ {
		ep, err := NewTCP(TCPConfig{
			Rank: r, Size: n, WorldID: 0xabc, Addrs: addrs, Listener: lns[r],
			Faults: fp, AckTimeout: 50 * time.Millisecond, DialTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		eps[r] = ep
	}
	rec := &meshRecorder{msgs: make([][]meshMsg, n)}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = eps[r].Start(rec.handler(r), down)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("start rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps, rec
}

func payloadFor(src, dst int) []byte {
	b := datatype.GetBuffer(32 + src*7 + dst*3)
	for i := range b {
		b[i] = byte(src*31 + dst*7 + i)
	}
	return b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPMeshExchange: 4 ranks on localhost, all-pairs exchange including
// self-sends; every message arrives intact with its header.
func TestTCPMeshExchange(t *testing.T) {
	const n = 4
	eps, rec := startMesh(t, n, nil, nil)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			hdr := Header{Ctx: 1, Src: int32(src), Tag: int32(100 + dst), Seq: uint64(src*n + dst)}
			if err := eps[src].Send(dst, hdr, payloadFor(src, dst)); err != nil {
				t.Fatalf("send %d->%d: %v", src, dst, err)
			}
		}
	}
	for dst := 0; dst < n; dst++ {
		waitFor(t, fmt.Sprintf("rank %d inbox", dst), func() bool { return len(rec.get(dst)) == n })
		seen := map[int32]bool{}
		for _, m := range rec.get(dst) {
			want := payloadFor(int(m.Hdr.Src), dst)
			if len(m.Payload) != len(want) {
				t.Fatalf("rank %d from %d: %d bytes, want %d", dst, m.Hdr.Src, len(m.Payload), len(want))
			}
			for i := range want {
				if m.Payload[i] != want[i] {
					t.Fatalf("rank %d from %d: payload byte %d mismatch", dst, m.Hdr.Src, i)
				}
			}
			if m.Hdr.Tag != int32(100+dst) {
				t.Fatalf("rank %d: tag %d", dst, m.Hdr.Tag)
			}
			seen[m.Hdr.Src] = true
		}
		if len(seen) != n {
			t.Fatalf("rank %d heard from %d distinct sources", dst, len(seen))
		}
	}
}

// TestTCPLossyDelivery: with a seeded drop+corrupt+duplicate plan below the
// framing layer, every message still arrives exactly once and intact, and
// the stats show the reliability protocol actually worked (retransmissions
// fired, the CRC trailer rejected corrupted frames, duplicates were
// deduplicated) with zero corrupted payloads accepted.
func TestTCPLossyDelivery(t *testing.T) {
	const n, rounds = 3, 40
	fp := &simnet.FaultPlan{Seed: 99, Drop: 0.15, Corrupt: 0.15, Duplicate: 0.1}
	eps, rec := startMesh(t, n, fp, nil)
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				dst := (src + 1 + k%(n-1)) % n
				hdr := Header{Ctx: 7, Src: int32(src), Tag: int32(k)}
				if err := eps[src].Send(dst, hdr, payloadFor(src, dst)); err != nil {
					t.Errorf("send %d->%d round %d: %v", src, dst, k, err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	waitFor(t, "all lossy messages", func() bool {
		total := 0
		for r := 0; r < n; r++ {
			total += len(rec.get(r))
		}
		return total == n*rounds
	})
	var agg TCPStats
	for _, ep := range eps {
		s := ep.Stats()
		agg.Retransmits += s.Retransmits
		agg.CRCRejects += s.CRCRejects
		agg.DupRejects += s.DupRejects
		agg.Dropped += s.Dropped
		agg.Corrupted += s.Corrupted
	}
	if agg.Dropped == 0 || agg.Corrupted == 0 {
		t.Fatalf("fault plan injected nothing: %+v", agg)
	}
	if agg.Retransmits == 0 {
		t.Fatalf("no retransmissions despite %d drops/%d corruptions", agg.Dropped, agg.Corrupted)
	}
	if agg.CRCRejects == 0 {
		t.Fatalf("corrupted frames were never CRC-rejected: %+v", agg)
	}
	// Every payload that was delivered must be intact: zero checksum-accepted
	// corruptions.
	for r := 0; r < n; r++ {
		for _, m := range rec.get(r) {
			want := payloadFor(int(m.Hdr.Src), r)
			for i := range want {
				if m.Payload[i] != want[i] {
					t.Fatalf("rank %d accepted corrupted payload from %d", r, m.Hdr.Src)
				}
			}
		}
	}
}

// TestTCPPeerDown: abruptly closing one endpoint fires the down callback at
// its peers, and subsequent sends to it fail with PeerDownError.
func TestTCPPeerDown(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	downs := map[int]int{}
	eps, _ := startMesh(t, n, nil, func(rank int) {
		mu.Lock()
		downs[rank]++
		mu.Unlock()
	})
	eps[2].Close()
	waitFor(t, "down callbacks", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return downs[2] >= 2
	})
	waitFor(t, "send failure", func() bool {
		err := eps[0].Send(2, Header{}, payloadFor(0, 2))
		var pd *PeerDownError
		return errors.As(err, &pd) && pd.Rank == 2
	})
	// Ranks 0 and 1 can still talk.
	if err := eps[0].Send(1, Header{Ctx: 3, Src: 0, Tag: 5}, payloadFor(0, 1)); err != nil {
		t.Fatalf("surviving pair send: %v", err)
	}
}

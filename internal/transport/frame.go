package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// The wire frame.  Every frame is
//
//	[4] length   — uint32 LE, byte count of body plus CRC trailer
//	[…] body     — kind byte followed by kind-specific fields
//	[4] CRC-32   — IEEE checksum of the body
//
// The length prefix is the only field not covered by the checksum: a
// corrupted prefix desynchronizes the stream and is caught by the length
// sanity bounds instead.  Data-frame bodies carry the transport's own
// reliability fields (sequence number, reliable flag) ahead of the runtime
// Header, so the ack/retransmission protocol stays below the layer that
// interprets headers.

// Frame kinds.
const (
	// KindHello opens a connection: world id, sender rank, world size, and
	// the sender's membership epoch.  An accepting endpoint rejects a hello
	// from an older epoch, fencing stale traffic after a rank is replaced.
	KindHello byte = 1
	// KindData carries one runtime message (Header + payload).
	KindData byte = 2
	// KindAck acknowledges the reliable data frame with the same sequence
	// number on this link.
	KindAck byte = 3
	// KindBeat is a heartbeat beacon carrying the sender's membership
	// epoch.  Beats prove liveness of a peer that has nothing to send; a
	// peer that stops producing frames of any kind for longer than the
	// configured miss window becomes suspect and eventually failed.
	KindBeat byte = 4
)

// FlagReliable marks a data frame the sender will retransmit until
// acknowledged; the receiver must ack it and deduplicate by sequence.
const FlagReliable byte = 1

// Frame is the decoded form of one wire frame.
type Frame struct {
	Kind byte

	// Data frames.
	TSeq    uint64 // transport sequence number on this directed link
	Flags   byte
	Hdr     Header
	Payload []byte // subslice of the decode input; copy to retain

	// Hello frames.
	WorldID uint64
	Rank    int32
	WSize   int32

	// Hello and beat frames: the sender's membership epoch.
	Epoch uint64
}

// Frame geometry.
const (
	framePrefixLen  = 4                  // length prefix
	frameTrailerLen = 4                  // CRC-32 trailer
	dataHeadLen     = 1 + 8 + 1 + hdrLen // kind + tseq + flags + header
	helloBodyLen    = 1 + 8 + 4 + 4 + 8  // kind + world id + rank + size + epoch
	ackBodyLen      = 1 + 8              // kind + tseq
	beatBodyLen     = 1 + 8              // kind + epoch
	hdrLen          = 8 + 4 + 4 + 8 + 1 + 4 + 8 + 4 + 8 + 8

	// DefaultMaxFrame bounds a frame's wire size; a length prefix above the
	// limit is treated as stream corruption.
	DefaultMaxFrame = 1 << 28
)

// Codec errors.
var (
	// ErrShortFrame reports a truncated frame: more bytes are needed.
	ErrShortFrame = errors.New("transport: short frame")
	// ErrFrameLength reports an insane length prefix (zero, shorter than
	// the smallest body, or beyond the frame size limit).
	ErrFrameLength = errors.New("transport: bad frame length")
	// ErrChecksum reports a CRC trailer mismatch.
	ErrChecksum = errors.New("transport: frame checksum mismatch")
	// ErrBadFrame reports a structurally invalid body (unknown kind,
	// inconsistent kind-specific length).
	ErrBadFrame = errors.New("transport: malformed frame")
)

// HeaderLen is the encoded size of a Header, exported for transports that
// define their own record framing (the shm rings) but share the header
// layout with the TCP wire format.
const HeaderLen = hdrLen

// AppendHeader appends the canonical wire encoding of h to dst.
func AppendHeader(dst []byte, h *Header) []byte { return appendHeader(dst, h) }

// DecodeHeader decodes a Header from the first HeaderLen bytes of b.
func DecodeHeader(b []byte) Header { return decodeHeader(b) }

func appendHeader(dst []byte, h *Header) []byte {
	var b [hdrLen]byte
	binary.LittleEndian.PutUint64(b[0:], h.Ctx)
	binary.LittleEndian.PutUint32(b[8:], uint32(h.Src))
	binary.LittleEndian.PutUint32(b[12:], uint32(h.Tag))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(h.Arrival))
	if h.Reliable {
		b[24] = 1
	}
	binary.LittleEndian.PutUint32(b[25:], uint32(h.WSrc))
	binary.LittleEndian.PutUint64(b[29:], h.Seq)
	binary.LittleEndian.PutUint32(b[37:], h.Sum)
	binary.LittleEndian.PutUint64(b[41:], h.MSeq)
	binary.LittleEndian.PutUint64(b[49:], h.Job)
	return append(dst, b[:]...)
}

func decodeHeader(b []byte) Header {
	return Header{
		Ctx:      binary.LittleEndian.Uint64(b[0:]),
		Src:      int32(binary.LittleEndian.Uint32(b[8:])),
		Tag:      int32(binary.LittleEndian.Uint32(b[12:])),
		Arrival:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		Reliable: b[24] != 0,
		WSrc:     int32(binary.LittleEndian.Uint32(b[25:])),
		Seq:      binary.LittleEndian.Uint64(b[29:]),
		Sum:      binary.LittleEndian.Uint32(b[37:]),
		MSeq:     binary.LittleEndian.Uint64(b[41:]),
		Job:      binary.LittleEndian.Uint64(b[49:]),
	}
}

// EncodeFrame appends the complete wire encoding of f — length prefix,
// body, CRC trailer — to dst and returns the extended slice.
func EncodeFrame(dst []byte, f *Frame) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	body := len(dst)
	dst = append(dst, f.Kind)
	switch f.Kind {
	case KindHello:
		var b [24]byte
		binary.LittleEndian.PutUint64(b[0:], f.WorldID)
		binary.LittleEndian.PutUint32(b[8:], uint32(f.Rank))
		binary.LittleEndian.PutUint32(b[12:], uint32(f.WSize))
		binary.LittleEndian.PutUint64(b[16:], f.Epoch)
		dst = append(dst, b[:]...)
	case KindData:
		var b [9]byte
		binary.LittleEndian.PutUint64(b[0:], f.TSeq)
		b[8] = f.Flags
		dst = append(dst, b[:]...)
		dst = appendHeader(dst, &f.Hdr)
		dst = append(dst, f.Payload...)
	case KindAck:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[0:], f.TSeq)
		dst = append(dst, b[:]...)
	case KindBeat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[0:], f.Epoch)
		dst = append(dst, b[:]...)
	default:
		panic(fmt.Sprintf("transport: encoding unknown frame kind %d", f.Kind))
	}
	sum := crc32.ChecksumIEEE(dst[body:])
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	dst = append(dst, tr[:]...)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-body))
	return dst
}

// DecodeFrame decodes one frame from the head of b (starting at the length
// prefix) and returns it with the number of bytes consumed.  The returned
// Payload aliases b.  ErrShortFrame means b holds a truncated frame;
// ErrFrameLength, ErrChecksum and ErrBadFrame mean the stream is damaged at
// this frame.
func DecodeFrame(b []byte, maxFrame int) (Frame, int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(b) < framePrefixLen {
		return Frame{}, 0, ErrShortFrame
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 1+frameTrailerLen || n > maxFrame {
		return Frame{}, 0, ErrFrameLength
	}
	if len(b) < framePrefixLen+n {
		return Frame{}, 0, ErrShortFrame
	}
	body := b[framePrefixLen : framePrefixLen+n-frameTrailerLen]
	want := binary.LittleEndian.Uint32(b[framePrefixLen+n-frameTrailerLen:])
	if crc32.ChecksumIEEE(body) != want {
		return Frame{}, framePrefixLen + n, ErrChecksum
	}
	f, err := decodeBody(body)
	return f, framePrefixLen + n, err
}

func decodeBody(body []byte) (Frame, error) {
	f := Frame{Kind: body[0]}
	switch f.Kind {
	case KindHello:
		if len(body) != helloBodyLen {
			return Frame{}, ErrBadFrame
		}
		f.WorldID = binary.LittleEndian.Uint64(body[1:])
		f.Rank = int32(binary.LittleEndian.Uint32(body[9:]))
		f.WSize = int32(binary.LittleEndian.Uint32(body[13:]))
		f.Epoch = binary.LittleEndian.Uint64(body[17:])
	case KindData:
		if len(body) < dataHeadLen {
			return Frame{}, ErrBadFrame
		}
		f.TSeq = binary.LittleEndian.Uint64(body[1:])
		f.Flags = body[9]
		f.Hdr = decodeHeader(body[10:])
		f.Payload = body[dataHeadLen:]
	case KindAck:
		if len(body) != ackBodyLen {
			return Frame{}, ErrBadFrame
		}
		f.TSeq = binary.LittleEndian.Uint64(body[1:])
	case KindBeat:
		if len(body) != beatBodyLen {
			return Frame{}, ErrBadFrame
		}
		f.Epoch = binary.LittleEndian.Uint64(body[1:])
	default:
		return Frame{}, ErrBadFrame
	}
	return f, nil
}

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nccd/internal/datatype"
)

// Mux multiplexes many independent rank worlds ("jobs") onto one started
// transport, so a long-lived service can host concurrent solves on a
// single shared peer mesh without the worlds ever seeing each other's
// frames.  Each job gets a Sub — a virtual Transport spanning a subset of
// the mesh ranks under its own job-relative rank numbering — and every
// frame a Sub sends is stamped with the job id in Header.Job; the
// receiving Mux routes purely on that stamp.  Context ids therefore never
// need to be disjoint across jobs: the effective communicator namespace
// is the (job, ctx) pair, which layers cleanly on the epoch-fenced
// contexts of the recovery protocol.
//
// Failure events fan out with the same isolation: a mesh rank going down
// is reported only to the Subs whose job is mapped onto it (translated to
// the job-relative rank), so a crash aborts exactly the jobs that
// depended on the crashed process and no others.
//
// A frame can arrive for a job whose Sub is not registered yet — the
// submitting side may start solving before a slower peer has processed
// the job-start control message.  Those frames are held (bounded) and
// flushed when the Sub starts.  Frames for a released job are dropped.
type Mux struct {
	real Transport
	vec  VectoredSender // real's zero-copy extension, nil if unsupported

	mu      sync.Mutex
	subs    map[uint64]*Sub
	closed  map[uint64]struct{} // released jobs: late frames are dropped
	held    map[uint64][]heldFrame
	heldLen int // total held payload bytes, bounded by maxHeldBytes
	downed  []bool
	started bool

	// Service-level observers of mesh rank lifecycle, independent of any
	// job mapping.
	peerDown []DownFunc
	peerUp   []func(rank int)

	heldDropped atomic.Int64
	jobDropped  atomic.Int64
}

// maxHeldBytes bounds the payload bytes parked for not-yet-registered
// jobs across the whole mux.  The window between a job-start message and
// the Sub registering is milliseconds; the bound only matters if a job id
// is never registered at all (a control-plane bug), where unbounded
// buffering would be a slow leak.
const maxHeldBytes = 16 << 20

type heldFrame struct {
	to      int
	hdr     Header
	payload []byte
}

// NewMux wraps real, which must not have been started: the mux owns the
// one Start the Transport contract allows.
func NewMux(real Transport) *Mux {
	m := &Mux{
		real:   real,
		subs:   make(map[uint64]*Sub),
		closed: make(map[uint64]struct{}),
		held:   make(map[uint64][]heldFrame),
		downed: make([]bool, real.Size()),
	}
	if vs, ok := real.(VectoredSender); ok {
		m.vec = vs
	}
	return m
}

// Start connects the underlying transport and begins routing.  Call once,
// before creating Subs.
func (m *Mux) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return fmt.Errorf("transport: mux already started")
	}
	m.started = true
	m.mu.Unlock()
	if ht, ok := m.real.(interface{ SetHealth(HealthFuncs) }); ok {
		ht.SetHealth(HealthFuncs{Beat: m.onBeat, Suspect: m.onSuspect, Up: m.onUp})
	}
	return m.real.Start(m.route, m.onPeerDown)
}

// Real returns the wrapped transport (for stats and occupancy probes).
func (m *Mux) Real() Transport { return m.real }

// Size is the mesh size in real ranks.
func (m *Mux) Size() int { return m.real.Size() }

// Occupancy forwards the underlying transport's resource gauges, zero if
// it cannot report them.
func (m *Mux) Occupancy() Occupancy {
	if or, ok := m.real.(OccupancyReporter); ok {
		return or.Occupancy()
	}
	return Occupancy{}
}

// OnPeerDown registers a service-level observer of mesh rank failures,
// called (on the transport's callback goroutine) with the real rank.
func (m *Mux) OnPeerDown(f DownFunc) {
	m.mu.Lock()
	m.peerDown = append(m.peerDown, f)
	m.mu.Unlock()
}

// OnPeerUp registers an observer of mesh rank reconnections (a respawned
// process re-entering the mesh), called with the real rank.
func (m *Mux) OnPeerUp(f func(rank int)) {
	m.mu.Lock()
	m.peerUp = append(m.peerUp, f)
	m.mu.Unlock()
}

// PeerAlive reports whether real rank r is currently connected, as far as
// the mux has observed (self counts as alive).
func (m *Mux) PeerAlive(r int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return r >= 0 && r < len(m.downed) && !m.downed[r]
}

// HeldDropped counts frames dropped because the held-frame budget was
// exhausted; JobDropped counts frames dropped for unknown or released
// jobs.  Both should stay zero in a healthy service.
func (m *Mux) HeldDropped() int64 { return m.heldDropped.Load() }
func (m *Mux) JobDropped() int64  { return m.jobDropped.Load() }

// Sub creates the virtual transport for job over the given real ranks
// (job rank i ↔ mesh rank ranks[i]).  The job id must be nonzero —
// Header.Job zero means "not multiplexed" — and unused by any live Sub.
// Released ids must not be reused: late frames of a released job are
// dropped by id.
func (m *Mux) Sub(job uint64, ranks []int) (*Sub, error) {
	if job == 0 {
		return nil, fmt.Errorf("transport: job id must be nonzero")
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("transport: job %d has no ranks", job)
	}
	ofReal := make(map[int]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= m.real.Size() {
			return nil, fmt.Errorf("transport: job %d rank %d out of range [0,%d)", job, r, m.real.Size())
		}
		if _, dup := ofReal[r]; dup {
			return nil, fmt.Errorf("transport: job %d maps mesh rank %d twice", job, r)
		}
		ofReal[r] = i
	}
	s := &Sub{m: m, job: job, ranks: append([]int(nil), ranks...), ofReal: ofReal}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.subs[job]; exists {
		return nil, fmt.Errorf("transport: job id %d already in use", job)
	}
	if _, was := m.closed[job]; was {
		return nil, fmt.Errorf("transport: job id %d was released and cannot be reused", job)
	}
	m.subs[job] = s
	return s, nil
}

// release detaches a Sub: its job id is tombstoned so stragglers (late
// retransmissions, goodbye frames of an already-finished peer) are
// dropped instead of parked forever.
func (m *Mux) release(job uint64) {
	m.mu.Lock()
	delete(m.subs, job)
	m.closed[job] = struct{}{}
	for _, hf := range m.held[job] {
		m.heldLen -= len(hf.payload)
		datatype.PutBuffer(hf.payload)
	}
	delete(m.held, job)
	m.mu.Unlock()
}

// route is the single delivery handler registered on the real transport.
func (m *Mux) route(to int, hdr Header, payload []byte) {
	job := hdr.Job
	m.mu.Lock()
	s := m.subs[job]
	if s == nil || !s.startedLoad() {
		if _, gone := m.closed[job]; gone || job == 0 {
			m.mu.Unlock()
			m.jobDropped.Add(1)
			datatype.PutBuffer(payload)
			return
		}
		// Park for a job (or a Sub) that has not registered yet.
		if m.heldLen+len(payload) > maxHeldBytes {
			m.mu.Unlock()
			m.heldDropped.Add(1)
			datatype.PutBuffer(payload)
			return
		}
		m.held[job] = append(m.held[job], heldFrame{to: to, hdr: hdr, payload: payload})
		m.heldLen += len(payload)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	s.deliver(to, hdr, payload)
}

// onPeerDown fans a mesh rank failure out to the jobs mapped onto it and
// to the service-level observers.
func (m *Mux) onPeerDown(r int) {
	m.mu.Lock()
	if r >= 0 && r < len(m.downed) {
		m.downed[r] = true
	}
	subs := make([]*Sub, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	observers := append([]DownFunc(nil), m.peerDown...)
	m.mu.Unlock()
	for _, s := range subs {
		s.peerDown(r)
	}
	for _, f := range observers {
		f(r)
	}
}

func (m *Mux) onUp(r int) {
	m.mu.Lock()
	if r >= 0 && r < len(m.downed) {
		m.downed[r] = false
	}
	subs := make([]*Sub, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	observers := append([]func(rank int){}, m.peerUp...)
	m.mu.Unlock()
	for _, s := range subs {
		s.peerUp(r)
	}
	for _, f := range observers {
		f(r)
	}
}

func (m *Mux) onBeat(r int) {
	m.mu.Lock()
	subs := make([]*Sub, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.beat(r)
	}
}

func (m *Mux) onSuspect(r int, suspect bool, silent time.Duration) {
	m.mu.Lock()
	subs := make([]*Sub, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.suspect(r, suspect, silent)
	}
}

// Close closes the underlying transport.  Subs become unusable.
func (m *Mux) Close() error { return m.real.Close() }

// Sub is one job's virtual transport: the Transport (and VectoredSender)
// interface over a subset of the mesh, in job-relative rank numbering.
// It is handed to mpi.NewWorldTransport exactly like a physical
// transport; Start registers the world's handler with the mux and Close
// releases the job id.
type Sub struct {
	m      *Mux
	job    uint64
	ranks  []int       // job rank -> real rank
	ofReal map[int]int // real rank -> job rank

	started atomic.Bool
	closed  atomic.Bool

	cbMu    sync.Mutex
	handler Handler
	down    DownFunc
	health  HealthFuncs
}

// Job returns the job id frames of this sub are stamped with.
func (s *Sub) Job() uint64 { return s.job }

// Ranks returns the job-rank → mesh-rank mapping.
func (s *Sub) Ranks() []int { return append([]int(nil), s.ranks...) }

// Size is the job's world size.
func (s *Sub) Size() int { return len(s.ranks) }

// Local reports whether job rank r is hosted by this process.
func (s *Sub) Local(r int) bool {
	if r < 0 || r >= len(s.ranks) {
		return false
	}
	return s.m.real.Local(s.ranks[r])
}

// Wallclock mirrors the underlying transport.
func (s *Sub) Wallclock() bool { return s.m.real.Wallclock() }

// NodeMap projects the mesh's physical node layout onto the job's ranks,
// so hierarchy-aware collectives keep working inside a job.  Nil when the
// mesh has no layout.
func (s *Sub) NodeMap() []int {
	nm, ok := s.m.real.(interface{ NodeMap() []int })
	if !ok {
		return nil
	}
	mesh := nm.NodeMap()
	if mesh == nil {
		return nil
	}
	out := make([]int, len(s.ranks))
	for i, r := range s.ranks {
		out[i] = mesh[r]
	}
	return out
}

func (s *Sub) startedLoad() bool { return s.started.Load() }

// Start registers the job world's delivery handler and failure callback
// with the mux, flushes any frames that arrived early, and replays
// already-observed failures of mesh ranks this job is mapped onto.  The
// underlying transport must already be started (Mux.Start).
func (s *Sub) Start(deliver Handler, down DownFunc) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.cbMu.Lock()
	s.handler = deliver
	s.down = down
	s.cbMu.Unlock()
	if s.started.Swap(true) {
		return fmt.Errorf("transport: job %d sub already started", s.job)
	}
	m := s.m
	m.mu.Lock()
	held := m.held[s.job]
	delete(m.held, s.job)
	for _, hf := range held {
		m.heldLen -= len(hf.payload)
	}
	var dead []int
	for jr, rr := range s.ranks {
		if rr < len(m.downed) && m.downed[rr] {
			dead = append(dead, jr)
		}
	}
	m.mu.Unlock()
	for _, hf := range held {
		s.deliver(hf.to, hf.hdr, hf.payload)
	}
	for _, jr := range dead {
		down(jr)
	}
	return nil
}

// Send stamps the job id and forwards to the mesh rank behind job rank
// to.  The header travels otherwise verbatim: Src/WSrc are already
// job-relative on both sides, so no translation is needed.
func (s *Sub) Send(to int, hdr Header, payload []byte) error {
	if s.closed.Load() {
		datatype.PutBuffer(payload)
		return ErrClosed
	}
	if to < 0 || to >= len(s.ranks) {
		datatype.PutBuffer(payload)
		return fmt.Errorf("transport: job %d rank %d out of range [0,%d)", s.job, to, len(s.ranks))
	}
	hdr.Job = s.job
	return s.m.real.Send(s.ranks[to], hdr, payload)
}

// SendVectored forwards the gather list zero-copy when the mesh supports
// it, and falls back to a packed Send otherwise.
func (s *Sub) SendVectored(to int, hdr Header, user []byte, segs []datatype.Segment) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= len(s.ranks) {
		return fmt.Errorf("transport: job %d rank %d out of range [0,%d)", s.job, to, len(s.ranks))
	}
	hdr.Job = s.job
	if s.m.vec != nil {
		return s.m.vec.SendVectored(s.ranks[to], hdr, user, segs)
	}
	n := 0
	for _, sg := range segs {
		n += sg.Len
	}
	buf := datatype.GetBuffer(n)
	off := 0
	for _, sg := range segs {
		off += copy(buf[off:off+sg.Len], user[sg.Off:sg.Off+sg.Len])
	}
	return s.m.real.Send(s.ranks[to], hdr, buf)
}

// SetHealth wires the job world's liveness callbacks; the mux translates
// mesh ranks to job ranks and filters events to the job's membership.
func (s *Sub) SetHealth(h HealthFuncs) {
	s.cbMu.Lock()
	s.health = h
	s.cbMu.Unlock()
}

// SetEpoch forwards an epoch raise to the mesh (raise-only there, so
// concurrent jobs cannot regress each other).
func (s *Sub) SetEpoch(e uint64) {
	if et, ok := s.m.real.(interface{ SetEpoch(uint64) }); ok {
		et.SetEpoch(e)
	}
}

// Close releases the job id from the mux.  The mesh stays up.
func (s *Sub) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.m.release(s.job)
	return nil
}

func (s *Sub) deliver(to int, hdr Header, payload []byte) {
	jobTo, ok := s.ofReal[to]
	if !ok {
		// A frame for a mesh rank this job does not span — only possible
		// on a transport hosting several local ranks (inproc).
		s.m.jobDropped.Add(1)
		datatype.PutBuffer(payload)
		return
	}
	s.cbMu.Lock()
	h := s.handler
	s.cbMu.Unlock()
	if h == nil {
		s.m.jobDropped.Add(1)
		datatype.PutBuffer(payload)
		return
	}
	h(jobTo, hdr, payload)
}

func (s *Sub) peerDown(realRank int) {
	jr, ok := s.ofReal[realRank]
	if !ok || !s.started.Load() {
		return
	}
	s.cbMu.Lock()
	d := s.down
	s.cbMu.Unlock()
	if d != nil {
		d(jr)
	}
}

func (s *Sub) peerUp(realRank int) {
	jr, ok := s.ofReal[realRank]
	if !ok {
		return
	}
	s.cbMu.Lock()
	up := s.health.Up
	s.cbMu.Unlock()
	if up != nil {
		up(jr)
	}
}

func (s *Sub) beat(realRank int) {
	jr, ok := s.ofReal[realRank]
	if !ok {
		return
	}
	s.cbMu.Lock()
	b := s.health.Beat
	s.cbMu.Unlock()
	if b != nil {
		b(jr)
	}
}

func (s *Sub) suspect(realRank int, suspect bool, silent time.Duration) {
	jr, ok := s.ofReal[realRank]
	if !ok {
		return
	}
	s.cbMu.Lock()
	f := s.health.Suspect
	s.cbMu.Unlock()
	if f != nil {
		f(jr, suspect, silent)
	}
}

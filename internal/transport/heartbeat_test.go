package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// startMeshWith is startMesh with per-endpoint config shaping: mutate is
// called on each rank's config before NewTCP.
func startMeshWith(t *testing.T, n int, down DownFunc, mutate func(r int, cfg *TCPConfig)) ([]*TCP, *meshRecorder, []string) {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	eps := make([]*TCP, n)
	for r := 0; r < n; r++ {
		cfg := TCPConfig{
			Rank: r, Size: n, WorldID: 0xfeed, Addrs: addrs, Listener: lns[r],
			AckTimeout: 50 * time.Millisecond, DialTimeout: 5 * time.Second,
		}
		if mutate != nil {
			mutate(r, &cfg)
		}
		ep, err := NewTCP(cfg)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		eps[r] = ep
	}
	rec := &meshRecorder{msgs: make([][]meshMsg, n)}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = eps[r].Start(rec.handler(r), down)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("start rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps, rec, addrs
}

// TestHeartbeatQuietLinkStaysHealthy: a mesh with heartbeats exchanges no
// data at all for many miss windows; the beats alone keep every peer alive
// and unsuspected.
func TestHeartbeatQuietLinkStaysHealthy(t *testing.T) {
	const n = 3
	hb := HeartbeatConfig{Interval: 10 * time.Millisecond, Miss: 3, FailAfter: 9}
	var mu sync.Mutex
	suspects := 0
	eps, _, _ := startMeshWith(t, n, nil, func(r int, cfg *TCPConfig) { cfg.Heartbeat = hb })
	for _, ep := range eps {
		ep.SetHealth(HealthFuncs{Suspect: func(rank int, suspect bool, silent time.Duration) {
			mu.Lock()
			suspects++
			mu.Unlock()
		}})
	}
	time.Sleep(20 * hb.Interval)
	mu.Lock()
	got := suspects
	mu.Unlock()
	if got != 0 {
		t.Fatalf("%d suspicion events on an idle but beating mesh", got)
	}
	for r := 0; r < n; r++ {
		for p := 0; p < n; p++ {
			if p == r {
				continue
			}
			if !eps[r].Health(p).Alive {
				t.Fatalf("rank %d sees %d dead on a healthy mesh", r, p)
			}
			if lh := eps[r].LastHeard(p); time.Since(lh) > 5*hb.Interval {
				t.Fatalf("rank %d last heard %d %v ago despite heartbeats", r, p, time.Since(lh))
			}
		}
	}
	if eps[0].Stats().BeatsSent == 0 || eps[0].Stats().BeatsRecv == 0 {
		t.Fatalf("no beats flowed: %+v", eps[0].Stats())
	}
}

// TestHeartbeatDetectsHungPeer is the deterministic SIGSTOP stand-in: rank
// 1 pauses its heartbeats (connection open, nothing sent).  Rank 0 must
// suspect it within the miss window and then declare it down — without any
// connection close event — within the hard-failure window.
func TestHeartbeatDetectsHungPeer(t *testing.T) {
	const n = 2
	hb := HeartbeatConfig{Interval: 20 * time.Millisecond, Miss: 3, FailAfter: 9}
	type event struct {
		suspect bool
		silent  time.Duration
		at      time.Time
	}
	var mu sync.Mutex
	var events []event
	var downAt time.Time
	eps, _, _ := startMeshWith(t, n,
		func(rank int) {
			mu.Lock()
			if rank == 1 && downAt.IsZero() {
				downAt = time.Now()
			}
			mu.Unlock()
		},
		func(r int, cfg *TCPConfig) { cfg.Heartbeat = hb })
	eps[0].SetHealth(HealthFuncs{Suspect: func(rank int, suspect bool, silent time.Duration) {
		mu.Lock()
		events = append(events, event{suspect: suspect, silent: silent, at: time.Now()})
		mu.Unlock()
	}})

	// Let the detector see a healthy peer first, then "SIGSTOP" rank 1.
	time.Sleep(5 * hb.Interval)
	hung := time.Now()
	eps[1].PauseHeartbeats(true)

	waitFor(t, "suspicion of the hung peer", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) > 0
	})
	mu.Lock()
	first := events[0]
	mu.Unlock()
	if !first.suspect {
		t.Fatalf("first event cleared suspicion instead of raising it")
	}
	if first.silent < time.Duration(hb.Miss)*hb.Interval {
		t.Fatalf("suspected after only %v of silence, miss window is %v",
			first.silent, time.Duration(hb.Miss)*hb.Interval)
	}
	// Detection latency must stay within the configured window (generous
	// upper slack for CI scheduling, but the same order of magnitude).
	if lat := first.at.Sub(hung); lat > 20*time.Duration(hb.Miss)*hb.Interval {
		t.Fatalf("suspicion took %v, far beyond the %v miss window", lat, time.Duration(hb.Miss)*hb.Interval)
	}

	waitFor(t, "hard failure of the hung peer", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return !downAt.IsZero()
	})
	mu.Lock()
	hard := downAt
	mu.Unlock()
	// The silence clock starts at the last received beat, which may precede
	// the pause by up to one interval — allow that much slack below the
	// configured window.
	if hard.Sub(hung) < time.Duration(hb.FailAfter-2)*hb.Interval {
		t.Fatalf("hard failure after %v, fail window is %v", hard.Sub(hung),
			time.Duration(hb.FailAfter)*hb.Interval)
	}
	if eps[0].Health(1).Alive {
		t.Fatalf("hung peer still marked alive after hard failure")
	}
	var pd *PeerDownError
	if err := eps[0].Send(1, Header{}, payloadFor(0, 1)); !errors.As(err, &pd) {
		t.Fatalf("send to hung peer: %v, want PeerDownError", err)
	}
}

// TestHeartbeatRecoversSlowPeer: a peer that resumes beating inside the
// hard-failure window is un-suspected, not killed.
func TestHeartbeatRecoversSlowPeer(t *testing.T) {
	const n = 2
	hb := HeartbeatConfig{Interval: 20 * time.Millisecond, Miss: 2, FailAfter: 50}
	var mu sync.Mutex
	var events []bool
	eps, _, _ := startMeshWith(t, n, nil, func(r int, cfg *TCPConfig) { cfg.Heartbeat = hb })
	eps[0].SetHealth(HealthFuncs{Suspect: func(rank int, suspect bool, silent time.Duration) {
		mu.Lock()
		events = append(events, suspect)
		mu.Unlock()
	}})
	time.Sleep(3 * hb.Interval)
	eps[1].PauseHeartbeats(true)
	waitFor(t, "suspicion", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) == 1 && events[0]
	})
	eps[1].PauseHeartbeats(false)
	waitFor(t, "suspicion cleared", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) == 2 && !events[1]
	})
	if !eps[0].Health(1).Alive || eps[0].Health(1).Suspect {
		t.Fatalf("recovered peer still unhealthy: %+v", eps[0].Health(1))
	}
}

// TestTCPRejoinAfterRestart: rank 2 of a 3-mesh dies abruptly; a fresh
// endpoint for the same rank (new epoch, Rejoin mode) dials back in.  The
// survivors fire the Up callback, traffic flows both ways on the replaced
// link — including reliable traffic, whose per-link sequences restart —
// and the survivors' epoch bump fences a stale-epoch dialer out.
func TestTCPRejoinAfterRestart(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	downs, ups := map[int]int{}, map[int]int{}
	eps, rec, addrs := startMeshWith(t, n,
		func(rank int) {
			mu.Lock()
			downs[rank]++
			mu.Unlock()
		}, nil)
	for _, ep := range eps[:2] {
		ep.SetHealth(HealthFuncs{Up: func(rank int) {
			mu.Lock()
			ups[rank]++
			mu.Unlock()
		}})
	}

	// Seed some reliable-looking traffic so sequence state is nonzero.
	if err := eps[2].Send(0, Header{Ctx: 1, Src: 2, Tag: 7}, payloadFor(2, 0)); err != nil {
		t.Fatalf("pre-crash send: %v", err)
	}
	waitFor(t, "pre-crash delivery", func() bool { return len(rec.get(0)) == 1 })

	eps[2].Close() // SIGKILL stand-in: abrupt close, no goodbye
	waitFor(t, "down callbacks at survivors", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return downs[2] >= 2
	})

	// Survivors commit the recovery epoch before re-admission.
	eps[0].SetEpoch(1)
	eps[1].SetEpoch(1)

	// A stale incarnation (old epoch) must be fenced out.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	staleAddrs := append([]string(nil), addrs...)
	staleAddrs[2] = ln.Addr().String()
	stale, err := NewTCP(TCPConfig{
		Rank: 2, Size: n, WorldID: 0xfeed, Addrs: staleAddrs, Listener: ln,
		DialTimeout: 300 * time.Millisecond, Rejoin: true, Epoch: 0,
	})
	if err != nil {
		t.Fatalf("stale endpoint: %v", err)
	}
	if err := stale.Start(func(int, Header, []byte) {}, nil); err == nil {
		t.Fatalf("stale-epoch rejoin was accepted")
	}
	stale.Close()

	// The legitimate respawn carries the committed epoch and re-binds the
	// old address.
	ln2, err := net.Listen("tcp", addrs[2])
	if err != nil {
		t.Fatalf("rebind %s: %v", addrs[2], err)
	}
	fresh, err := NewTCP(TCPConfig{
		Rank: 2, Size: n, WorldID: 0xfeed, Addrs: addrs, Listener: ln2,
		DialTimeout: 5 * time.Second, Rejoin: true, Epoch: 1,
		AckTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fresh endpoint: %v", err)
	}
	t.Cleanup(func() { fresh.Close() })
	rec2 := &meshRecorder{msgs: make([][]meshMsg, n)}
	if err := fresh.Start(rec2.handler(2), nil); err != nil {
		t.Fatalf("rejoin start: %v", err)
	}
	waitFor(t, "up callbacks at survivors", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return ups[2] == 2
	})

	// Both directions of the replaced links work again.
	if err := eps[0].Send(2, Header{Ctx: 1, Src: 0, Tag: 11}, payloadFor(0, 2)); err != nil {
		t.Fatalf("survivor->rejoiner: %v", err)
	}
	if err := fresh.Send(1, Header{Ctx: 1, Src: 2, Tag: 12}, payloadFor(2, 1)); err != nil {
		t.Fatalf("rejoiner->survivor: %v", err)
	}
	waitFor(t, "post-rejoin deliveries", func() bool {
		return len(rec2.get(2)) == 1 && len(rec.get(1)) == 1
	})
	if got := rec.get(1)[0]; got.Hdr.Tag != 12 {
		t.Fatalf("survivor received tag %d, want 12", got.Hdr.Tag)
	}
}

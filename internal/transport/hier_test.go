package transport_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/transport"
	"nccd/internal/transport/shm"
)

// startHierWorld brings up a 2-node × 2-rank mixed-transport world in
// this process: each node's pair shares an in-process shm segment, the
// TCP mesh spans all four ranks.
func startHierWorld(t *testing.T, recv []func(hdr transport.Header, payload []byte)) []*transport.Hierarchical {
	t.Helper()
	const n = 4
	nodeOf := []int{0, 0, 1, 1}
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	segs := make([]*shm.Segment, 2)
	for g := range segs {
		seg, err := shm.NewMemSegment(2, 1<<16, 0x417)
		if err != nil {
			t.Fatal(err)
		}
		segs[g] = seg
	}
	hs := make([]*transport.Hierarchical, n)
	for r := 0; r < n; r++ {
		node := nodeOf[r]
		intra, err := shm.New(shm.Config{Rank: r, Size: n, Ranks: []int{node * 2, node*2 + 1},
			WorldID: 0x417, Seg: segs[node], RingBytes: 1 << 16,
			Heartbeat: transport.HeartbeatConfig{Interval: 20 * time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}
		inter, err := transport.NewTCP(transport.TCPConfig{Rank: r, Size: n, WorldID: 0x417,
			Addrs: addrs, Listener: lns[r], DialTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		h, err := transport.NewHierarchical(r, nodeOf, intra, inter)
		if err != nil {
			t.Fatal(err)
		}
		hs[r] = h
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = hs[r].Start(func(to int, hdr transport.Header, payload []byte) {
				recv[r](hdr, payload)
			}, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, h := range hs {
			h.Close()
		}
	})
	return hs
}

// TestHierarchicalRouting verifies per-peer routing: co-located traffic
// moves through the shm rings, remote traffic through the sockets, and
// both arrive intact.
func TestHierarchicalRouting(t *testing.T) {
	var got [4]atomic.Int64
	recv := make([]func(hdr transport.Header, payload []byte), 4)
	for r := 0; r < 4; r++ {
		r := r
		recv[r] = func(hdr transport.Header, payload []byte) {
			got[r].Add(int64(hdr.Tag))
			datatype.PutBuffer(payload)
		}
	}
	hs := startHierWorld(t, recv)

	send := func(src, dst, tag int) {
		t.Helper()
		if err := hs[src].Send(dst, transport.Header{Ctx: 1, Tag: int32(tag)}, datatype.GetBuffer(128)); err != nil {
			t.Fatalf("send %d->%d: %v", src, dst, err)
		}
	}
	send(0, 1, 10) // intra node 0
	send(0, 2, 100) // inter
	send(3, 2, 1000) // intra node 1
	send(2, 0, 10000) // inter
	deadline := time.Now().Add(5 * time.Second)
	for got[1].Load() != 10 || got[2].Load() != 1100 || got[0].Load() != 10000 {
		if time.Now().After(deadline) {
			t.Fatalf("deliveries incomplete: %d %d %d", got[0].Load(), got[1].Load(), got[2].Load())
		}
		time.Sleep(time.Millisecond)
	}

	shm0 := hs[0].Intra().(*shm.Transport).Stats()
	if shm0.FramesSent != 1 {
		t.Fatalf("rank 0 shm frames sent %d, want 1 (only the co-located send)", shm0.FramesSent)
	}
	tcp0 := hs[0].Inter().(*transport.TCP).Stats()
	if tcp0.FramesSent != 1 {
		t.Fatalf("rank 0 tcp frames sent %d, want 1 (only the remote send)", tcp0.FramesSent)
	}
	if vec, ok := hs[0].Intra().(transport.VectoredSender); !ok || vec == nil {
		t.Fatal("intra endpoint lost the vectored path")
	}
}

// TestHierarchicalHealthFilter kills a co-located peer's shm presence
// while its TCP connection stays open, and conversely checks that only
// the route-owning transport reports the failure upward.
func TestHierarchicalHealthFilter(t *testing.T) {
	recv := make([]func(hdr transport.Header, payload []byte), 4)
	for r := 0; r < 4; r++ {
		recv[r] = func(hdr transport.Header, payload []byte) { datatype.PutBuffer(payload) }
	}
	hs := startHierWorld(t, recv)

	var suspects [4]atomic.Int64
	hs[0].SetHealth(transport.HealthFuncs{
		Suspect: func(r int, s bool, silent time.Duration) {
			if s {
				suspects[r].Add(1)
			}
		},
	})
	// Rank 1 (co-located with 0) stops stamping its presence slot; its TCP
	// endpoint keeps beating nothing (no TCP heartbeats configured), so any
	// suspicion of rank 1 must come from the shm detector — and suspicion
	// of the remote ranks must not appear at all.
	hs[1].Intra().(*shm.Transport).PauseHeartbeats(true)
	deadline := time.Now().Add(5 * time.Second)
	for suspects[1].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("co-located failure never suspected via shm")
		}
		time.Sleep(time.Millisecond)
	}
	if suspects[2].Load() != 0 || suspects[3].Load() != 0 {
		t.Fatal("remote ranks suspected without cause")
	}
}

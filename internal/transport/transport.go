// Package transport is the seam between the message-passing runtime in
// internal/mpi and whatever actually carries its bytes.  The runtime above
// speaks in framed messages — a fixed Header of routing and reliability
// metadata plus an opaque payload — and the transport below decides whether
// those frames cross a channel inside one process (Inproc, the original
// simnet path, preserving virtual-time semantics exactly) or a real TCP
// socket between OS processes (TCP, wall-clock mode, with length-prefixed
// framing, a CRC-32 trailer, per-peer connection pooling and an
// ack/retransmission protocol when a simnet.FaultPlan is injected below the
// framing layer).
package transport

import (
	"errors"
	"strconv"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/obs"
)

// IdentAttrs extends attrs with the cross-rank matching identity carried in
// hdr — the communicator context (hex) and the per-(src,dst) message
// sequence (decimal) — so a transport-level span can be correlated with the
// mpi-level send/recv spans it carried.  Frames without an identity (MSeq
// 0: control traffic such as goodbyes and acks) pass attrs through
// unchanged.
func IdentAttrs(hdr Header, attrs ...obs.Attr) []obs.Attr {
	if hdr.MSeq == 0 {
		return attrs
	}
	return append(attrs,
		obs.Attr{Key: "ctx", Val: strconv.FormatUint(hdr.Ctx, 16)},
		obs.Attr{Key: "mseq", Val: strconv.FormatUint(hdr.MSeq, 10)})
}

// Header is the runtime metadata that travels with every message.  The
// fields mirror internal/mpi's envelope: routing (communicator context,
// sender comm rank, tag), the virtual-time arrival stamp used by the inproc
// transport, and the inproc reliability-simulation fields (Reliable..Sum)
// that the mpi layer sets when it models faults itself.  Wall-clock
// transports carry the header verbatim and run their own reliability
// protocol underneath it.
type Header struct {
	// Ctx is the communicator context id; a few values at the top of the
	// space are reserved by internal/mpi for control messages (goodbye,
	// revoke) that never reach a mailbox.
	Ctx uint64
	// Src is the sender's rank within the communicator.
	Src int32
	// Tag is the message tag.
	Tag int32
	// Arrival is the virtual time at which the payload is fully available
	// (inproc semantics; wall-clock receivers ignore it).
	Arrival float64
	// Reliable marks an envelope of the mpi layer's own fault simulation;
	// WSrc/Seq/Sum are its world-rank, sequence and CRC-32 fields.
	Reliable bool
	WSrc     int32
	Seq      uint64
	Sum      uint32
	// MSeq is the sender-assigned per-(source,destination) message sequence
	// number used by the observability layer to match a send span to its
	// receive span across ranks.  It is carried on every data frame and has
	// no protocol meaning: retransmitted copies of one logical message share
	// one MSeq.
	MSeq uint64
	// Job namespaces the frame when several independent rank worlds share
	// one physical mesh (the Mux).  Zero means "not multiplexed" — the
	// single-world daemons never set it.  A Mux sub-transport stamps its
	// job id on every outbound frame and the receiving Mux routes on it, so
	// two jobs' frames can carry identical context ids without ever seeing
	// each other.  The (Job, Ctx) pair is the effective communicator
	// namespace.
	Job uint64
}

// Handler consumes one inbound message addressed to local rank to.  The
// payload is owned by the handler: transports either pass the sender's
// buffer by reference (inproc, self-sends) or hand over a freshly pooled
// buffer (sockets), and the mpi receive path returns it to the shared
// datatype buffer pool once consumed.
type Handler func(to int, hdr Header, payload []byte)

// DownFunc is the failure-notification callback: the transport observed
// that rank can no longer communicate (connection loss, abrupt close).
// Clean departures are announced by the runtime itself above the transport;
// DownFunc only reports failures detected below it.
type DownFunc func(rank int)

// HealthFuncs are optional liveness callbacks a transport with a failure
// detector (the TCP endpoint's heartbeat protocol) fires alongside the
// mandatory Start callbacks.  Wire them before Start with SetHealth; any
// field may be nil.
type HealthFuncs struct {
	// Beat fires on every heartbeat beacon received from rank.
	Beat func(rank int)
	// Suspect fires when rank crosses the miss threshold without producing
	// any frame (suspect=true, with how long it has been silent), and again
	// with suspect=false if it resumes before being declared down.  A
	// suspicion that ripens into a hard failure fires DownFunc as usual.
	Suspect func(rank int, suspect bool, silentFor time.Duration)
	// Up fires when a previously failed rank establishes a fresh connection
	// (a respawned process rejoining the mesh).  The runtime above decides
	// when to re-admit it; the transport only reports the reconnection.
	Up func(rank int)
}

// Transport moves framed messages between the ranks of one world.
type Transport interface {
	// Size is the world size.
	Size() int
	// Local reports whether rank r is hosted by this process.
	Local(r int) bool
	// Start connects the transport (dialing/accepting peers for networked
	// implementations) and registers the inbound delivery handler and the
	// failure callback.  It must be called exactly once, before Send.
	Start(deliver Handler, down DownFunc) error
	// Send delivers hdr+payload to rank to.  Ownership of payload passes to
	// the transport: it is either delivered by reference to the receiving
	// handler or written to the wire and returned to the shared buffer
	// pool.  Send blocks until the payload is no longer needed by the
	// caller's buffer (for reliable wall-clock sends, until acknowledged).
	Send(to int, hdr Header, payload []byte) error
	// Wallclock reports whether the transport runs in wall-clock mode
	// (real sockets, no cross-rank virtual-time coupling) rather than the
	// deterministic virtual-time mode of the in-process path.
	Wallclock() bool
	// Close tears the transport down; in-flight receives fail.
	Close() error
}

// VectoredSender is the zero-copy extension of Transport: a transport that
// can put a message on the wire directly from a gather list of segments of
// the caller's buffer, skipping the pack-into-pooled-buffer copy entirely.
// The TCP endpoint implements it with an N-segment vectored write (writev)
// under a single frame whose CRC-32 trailer is computed incrementally
// across the segments; the in-process transport gathers into one pooled
// buffer at delivery.
type VectoredSender interface {
	// SendVectored delivers hdr plus the in-order concatenation of
	// user[s.Off:s.Off+s.Len] for each segment s to rank to.  Unlike Send,
	// ownership of the memory does NOT pass to the transport: user remains
	// the caller's buffer, and the transport must be finished reading it
	// (written to the wire, sealed into a private copy for retransmission,
	// or delivered) by the time SendVectored returns.  Zero-length
	// segments are permitted and contribute nothing.
	SendVectored(to int, hdr Header, user []byte, segs []datatype.Segment) error
}

// Occupancy is a transport's instantaneous resource usage, the raw signal
// behind service-level admission control: how many bytes are committed to
// the wire but not yet known delivered.  All fields are best-effort
// gauges read from atomics — momentary, not monotonic.
type Occupancy struct {
	// InflightBytes counts payload bytes of reliable frames sent but not
	// yet acknowledged (zero on transports, or fault plans, without an
	// ack protocol).
	InflightBytes int64 `json:"inflight_bytes"`
	// BacklogBytes counts bytes sitting in local send-side buffers: bytes
	// of frames mid-write on a socket, or occupying shared-memory send
	// rings awaiting the consumer.
	BacklogBytes int64 `json:"backlog_bytes"`
}

// Add accumulates other into o (for transports composed of layers).
func (o *Occupancy) Add(other Occupancy) {
	o.InflightBytes += other.InflightBytes
	o.BacklogBytes += other.BacklogBytes
}

// Total is the sum of every occupancy component.
func (o Occupancy) Total() int64 { return o.InflightBytes + o.BacklogBytes }

// OccupancyReporter is implemented by transports that can report their
// send-side resource usage.  Admission control polls it to decide whether
// the mesh has headroom for another job.
type OccupancyReporter interface {
	Occupancy() Occupancy
}

// Typed transport errors.  The mpi layer maps these onto its own error
// taxonomy (ErrRankFailed, ErrTimeout).
var (
	// ErrPeerDown reports that the destination rank's connection is gone.
	ErrPeerDown = errors.New("transport: peer down")
	// ErrRetriesExhausted reports that a reliable send ran out of
	// retransmission attempts without an acknowledgment.
	ErrRetriesExhausted = errors.New("transport: retries exhausted")
	// ErrClosed reports use of a transport after Close.
	ErrClosed = errors.New("transport: closed")
)

// PeerDownError carries the unreachable rank.  It wraps ErrPeerDown.
type PeerDownError struct{ Rank int }

func (e *PeerDownError) Error() string { return "transport: peer rank down" }
func (e *PeerDownError) Unwrap() error { return ErrPeerDown }

// RetriesError carries the peer and attempt count of an exhausted reliable
// send.  It wraps ErrRetriesExhausted.
type RetriesError struct {
	Rank     int
	Attempts int
}

func (e *RetriesError) Error() string { return "transport: reliable send exhausted retries" }
func (e *RetriesError) Unwrap() error { return ErrRetriesExhausted }

//go:build unix

package shm

import (
	"fmt"
	"os"
	"syscall"
	"time"
)

// fifoBell / fifoKnocker serve file-backed segments, where members are
// separate processes.  The bell is a named FIFO next to the segment file
// (<segment>.door<i>); the consumer parks in a deadline-bounded Read on
// the nonblocking read end — which Go registers with the netpoller — and
// producers knock with a nonblocking one-byte write.
type fifoBell struct {
	r *os.File // nonblocking read end, netpoller-registered
	// Our own write end.  Held open for the bell's lifetime so the FIFO
	// never drains to zero writers: without it, a producer process dying
	// would flip reads to instant EOF and turn the park into a spin.
	w   int
	buf [16]byte
}

func fifoPath(segPath string, member int) string {
	return fmt.Sprintf("%s.door%d", segPath, member)
}

func newFifoBell(segPath string, member int) (*fifoBell, error) {
	path := fifoPath(segPath, member)
	if err := syscall.Mkfifo(path, 0o600); err != nil && err != syscall.EEXIST {
		return nil, fmt.Errorf("shm: doorbell fifo: %w", err)
	}
	rfd, err := syscall.Open(path, syscall.O_RDONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
	if err != nil {
		return nil, fmt.Errorf("shm: doorbell open read: %w", err)
	}
	wfd, err := syscall.Open(path, syscall.O_WRONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
	if err != nil {
		syscall.Close(rfd)
		return nil, fmt.Errorf("shm: doorbell open write guard: %w", err)
	}
	// os.NewFile keeps the descriptor in nonblocking mode and registers it
	// with the netpoller, which is what makes SetReadDeadline work.
	return &fifoBell{r: os.NewFile(uintptr(rfd), path), w: wfd}, nil
}

func (b *fifoBell) park(timeout time.Duration) {
	b.r.SetReadDeadline(time.Now().Add(timeout))
	b.r.Read(b.buf[:]) // knock bytes, timeout, or EAGAIN — all mean "rescan"
}

func (b *fifoBell) close() {
	b.r.Close()
	syscall.Close(b.w)
}

type fifoKnocker struct {
	path string
	fd   int // -1 until a reader exists
}

func newFifoKnocker(segPath string, member int) *fifoKnocker {
	return &fifoKnocker{path: fifoPath(segPath, member), fd: -1}
}

func (k *fifoKnocker) knock() {
	if k.fd < 0 {
		fd, err := syscall.Open(k.path, syscall.O_WRONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
		if err != nil {
			// ENOENT/ENXIO: the peer has not created or opened its bell
			// yet, so it is not parked and needs no wake.
			return
		}
		k.fd = fd
	}
	one := [1]byte{1}
	if _, err := syscall.Write(k.fd, one[:]); err == syscall.EPIPE {
		// Reader went away (peer died); drop the fd and re-probe later.
		syscall.Close(k.fd)
		k.fd = -1
	}
	// EAGAIN means the FIFO already holds pending knocks — good enough.
}

func (k *fifoKnocker) close() {
	if k.fd >= 0 {
		syscall.Close(k.fd)
		k.fd = -1
	}
}

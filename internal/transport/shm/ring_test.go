package shm

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"nccd/internal/datatype"
	"nccd/internal/transport"
)

// testRing builds a standalone ring of the given power-of-two capacity.
func testRing(t *testing.T, capBytes int) *ring {
	t.Helper()
	var head, tail atomic.Uint64
	return &ring{head: &head, tail: &tail, data: make([]byte, capBytes), mask: uint64(capBytes - 1)}
}

func pushOne(t *testing.T, r *ring, tag int, payload []byte) bool {
	t.Helper()
	hdr := transport.Header{Ctx: 7, Src: 0, Tag: int32(tag)}
	return r.tryPush(&hdr, [][]byte{payload}, len(payload))
}

func popOne(t *testing.T, r *ring) (transport.Header, []byte, bool) {
	t.Helper()
	hdr, payload, ok, err := r.tryPop(1 << 20)
	if err != nil {
		t.Fatalf("tryPop: %v", err)
	}
	return hdr, payload, ok
}

// TestRingWraparound drives records across the segment boundary: with a
// capacity that is not a multiple of the record size, successive records
// land at every misalignment, including ones split across the wrap point
// of both the length prefix and the payload.
func TestRingWraparound(t *testing.T) {
	r := testRing(t, 1024)
	payload := make([]byte, 100) // record 149 bytes: 1024 % 149 != 0
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < 200; round++ {
		for i := range payload {
			payload[i] = byte(i + round)
		}
		if !pushOne(t, r, round, payload) {
			t.Fatalf("round %d: push failed on non-full ring", round)
		}
		hdr, got, ok := popOne(t, r)
		if !ok {
			t.Fatalf("round %d: empty ring after push", round)
		}
		if int(hdr.Tag) != round {
			t.Fatalf("round %d: tag %d", round, hdr.Tag)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: payload corrupted across wrap", round)
		}
		datatype.PutBuffer(got)
	}
	if r.head.Load() < 1024 {
		t.Fatalf("test never wrapped: head %d", r.head.Load())
	}
}

// TestRingFullBackpressure fills the ring to refusal, asserts the
// producer is refused exactly at capacity, then drains one record and
// verifies the freed space admits the next push.
func TestRingFullBackpressure(t *testing.T) {
	r := testRing(t, 1024)
	payload := make([]byte, 83)
	rec := uint64(recordBytes(len(payload)))
	want := uint64(1024) / rec
	var pushed uint64
	for pushOne(t, r, int(pushed), payload) {
		pushed++
		if pushed > want {
			t.Fatalf("ring accepted %d records of %d bytes into 1024", pushed, rec)
		}
	}
	if pushed != want {
		t.Fatalf("ring refused at %d records, capacity holds %d", pushed, want)
	}
	if free := r.free(); free >= rec {
		t.Fatalf("refused push with %d bytes free", free)
	}
	_, got, ok := popOne(t, r)
	if !ok {
		t.Fatal("full ring popped empty")
	}
	datatype.PutBuffer(got)
	if !pushOne(t, r, 99, payload) {
		t.Fatal("push still refused after drain of one record")
	}
}

// TestRingMixedSizes interleaves zero-length and 1-byte frames with KiB
// frames — the ex49 ghost-exchange shape where tiny corner contributions
// ride alongside bulk faces — through a concurrent producer/consumer
// pair, under -race in CI.
func TestRingMixedSizes(t *testing.T) {
	r := testRing(t, 4096)
	sizes := []int{0, 1024, 1, 2048, 0, 1, 1, 1024, 0, 512, 1, 1}
	const rounds = 500

	total := rounds * len(sizes)
	done := make(chan error, 1)
	go func() {
		seq := 0
		for seq < total {
			hdr, payload, ok, err := r.tryPop(1 << 20)
			if err != nil {
				done <- err
				return
			}
			if !ok {
				runtime.Gosched() // spin until the producer catches up
				continue
			}
			n := sizes[seq%len(sizes)]
			if int(hdr.Seq) != seq {
				done <- fmt.Errorf("record %d arrived as %d", seq, hdr.Seq)
				return
			}
			if len(payload) != n {
				done <- fmt.Errorf("record %d: %d bytes, want %d", seq, len(payload), n)
				return
			}
			for i, b := range payload {
				if b != byte(seq+i) {
					done <- fmt.Errorf("record %d corrupt at byte %d", seq, i)
					return
				}
			}
			datatype.PutBuffer(payload)
			seq++
		}
		done <- nil
	}()

	buf := make([]byte, 4096)
	for seq := 0; seq < total; seq++ {
		n := sizes[seq%len(sizes)]
		payload := buf[:n]
		for i := range payload {
			payload[i] = byte(seq + i)
		}
		hdr := transport.Header{Ctx: 1, Seq: uint64(seq)}
		for !r.tryPush(&hdr, [][]byte{payload}, n) {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRingVectoredGather pushes a multi-segment gather and checks the
// consumer sees the segments contiguously in order.
func TestRingVectoredGather(t *testing.T) {
	r := testRing(t, 1024)
	segs := [][]byte{[]byte("non"), {}, []byte("uniformly"), []byte("communicating")}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	hdr := transport.Header{Ctx: 3, Tag: 5}
	if !r.tryPush(&hdr, segs, total) {
		t.Fatal("push refused")
	}
	_, got, ok := popOne(t, r)
	if !ok {
		t.Fatal("pop empty")
	}
	if string(got) != "nonuniformlycommunicating" {
		t.Fatalf("gather produced %q", got)
	}
	datatype.PutBuffer(got)
}

// TestRingDrain verifies drain abandons the backlog atomically (the
// rejoin fresh-connection semantics).
func TestRingDrain(t *testing.T) {
	r := testRing(t, 1024)
	payload := make([]byte, 50)
	for i := 0; i < 3; i++ {
		if !pushOne(t, r, i, payload) {
			t.Fatalf("push %d refused", i)
		}
	}
	if n := r.drain(); n != uint64(3*recordBytes(50)) {
		t.Fatalf("drained %d bytes", n)
	}
	if _, _, ok := popOne(t, r); ok {
		t.Fatal("record visible after drain")
	}
	if !pushOne(t, r, 9, payload) {
		t.Fatal("push refused after drain")
	}
}

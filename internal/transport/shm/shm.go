package shm

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/obs"
	"nccd/internal/transport"
)

// Transport is the shared-memory endpoint for one rank of a co-located
// group.  Data moves through the segment's SPSC rings — one per directed
// pair, so sends never contend across peers — and liveness moves through
// the presence table: each member stamps a heartbeat into its own slot
// and a monitor goroutine scores every peer's silence, the same
// suspect-then-fail ladder as the TCP detector.  Failure recovery reuses
// the membership-epoch fencing of the socket transport: a replacement
// attaches with a bumped attach generation and the recovery epoch, peers
// report it Up only if that epoch is current, and the replacement drains
// its inbound rings on attach for fresh-connection semantics.
type Transport struct {
	cfg   Config
	seg   *Segment
	ownSeg bool
	idx   int   // my index within cfg.Ranks
	gi    []int // world rank → group index, -1 if not co-located

	deliver transport.Handler
	down    transport.DownFunc
	health  atomic.Pointer[transport.HealthFuncs]
	tracer  atomic.Pointer[obs.Tracer]

	peers  []*shmPeer // one per group index; nil at idx
	door   *atomic.Uint32 // my presence slot's doorbell gate (consumer side)
	bell   bell           // what the consumer parks on when the gate is up
	epoch  atomic.Uint64
	paused atomic.Bool
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
	stats  shmCounters
}

// Config configures one shared-memory endpoint.
type Config struct {
	Rank    int   // world rank this endpoint hosts
	Size    int   // world size (sends outside Ranks are rejected)
	Ranks   []int // world ranks sharing the segment; must contain Rank
	WorldID uint64

	// Path names the memory-mapped backing file (co-located processes).
	// Empty Path requires Seg: a pre-built in-process segment shared by
	// the group's Transport values (single-process worlds and tests).
	Path string
	Seg  *Segment

	RingBytes int // per-directed-ring data capacity (power of two, default 1 MiB)
	MaxFrame  int // largest accepted payload (default fits the ring)

	// Heartbeat drives the presence-table failure detector.  A zero
	// interval disables silence scoring; attach detection and the pid
	// probe still run on a slow tick.
	Heartbeat transport.HeartbeatConfig

	AttachTimeout time.Duration // wait for the group to attach (default 15s)
	Epoch         uint64        // membership epoch published at attach
	Rejoin        bool          // replacement endpoint: drain inbound rings at attach
}

func (c Config) withDefaults() Config {
	if c.RingBytes == 0 {
		c.RingBytes = 1 << 20
	}
	maxPayload := c.RingBytes - recordBytes(0)
	if c.MaxFrame == 0 || c.MaxFrame > maxPayload {
		c.MaxFrame = maxPayload
	}
	if c.AttachTimeout == 0 {
		c.AttachTimeout = 15 * time.Second
	}
	if c.Heartbeat.Interval > 0 {
		if c.Heartbeat.Miss == 0 {
			c.Heartbeat.Miss = 3
		}
		if c.Heartbeat.FailAfter == 0 {
			c.Heartbeat.FailAfter = 3 * c.Heartbeat.Miss
		}
	}
	return c
}

// Stats is a snapshot of the ring and presence counters.  Like
// transport.TCPStats these are per-endpoint numbers; register them under
// a per-rank metrics name (see the daemon) rather than summing endpoints.
type Stats struct {
	FramesSent     int64 `json:"frames_sent"`
	FramesRecv     int64 `json:"frames_recv"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesRecv      int64 `json:"bytes_recv"`
	VectoredSends  int64 `json:"vectored_sends"`
	RingFullStalls int64 `json:"ring_full_stalls"`
	StallNanos     int64 `json:"stall_nanos"`
	BeatsSent      int64 `json:"beats_sent"`
	BeatsRecv      int64 `json:"beats_recv"`
	DrainedBytes   int64 `json:"drained_bytes"`
}

type shmCounters struct {
	framesSent, framesRecv   atomic.Int64
	bytesSent, bytesRecv     atomic.Int64
	vectoredSends            atomic.Int64
	ringFullStalls           atomic.Int64
	stallNanos               atomic.Int64
	beatsSent, beatsRecv     atomic.Int64
	drainedBytes             atomic.Int64
}

// shmPeer is the per-peer state: the two directed rings and the failure
// detector's view of the member.
type shmPeer struct {
	rank int // world rank
	out  *ring
	in   *ring

	wmu     sync.Mutex // serializes producers on out (preserves SPSC)
	outSegs [][]byte   // gather scratch, guarded by wmu
	door    *atomic.Uint32 // the peer's doorbell gate (producer side)
	knock   knocker        // rings the peer's bell after a push

	alive     atomic.Bool
	suspect   atomic.Bool
	lastHeard atomic.Int64 // UnixNano of last frame or beat observation
	liveMu    sync.Mutex   // orders Up against down, as in the TCP endpoint

	// Monitor-goroutine-private observations.
	seenAgen uint64
	seenBeat int64
}

// New builds the endpoint and attaches it to the segment — creating or
// mapping the backing file when Path is set, adopting the shared
// in-process segment otherwise.  The presence slot is published here, so
// peers already running see the attach (and, on a rejoin, report the
// rank Up) before Start is called.
func New(cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("shm: rank %d out of range for size %d", cfg.Rank, cfg.Size)
	}
	if len(cfg.Ranks) == 0 {
		return nil, fmt.Errorf("shm: empty rank group")
	}
	ranks := append([]int(nil), cfg.Ranks...)
	sort.Ints(ranks)
	cfg.Ranks = ranks
	t := &Transport{cfg: cfg, idx: -1, stop: make(chan struct{})}
	t.epoch.Store(cfg.Epoch)
	t.gi = make([]int, cfg.Size)
	for r := range t.gi {
		t.gi[r] = -1
	}
	for i, r := range ranks {
		if r < 0 || r >= cfg.Size {
			return nil, fmt.Errorf("shm: group rank %d out of range for size %d", r, cfg.Size)
		}
		if t.gi[r] != -1 {
			return nil, fmt.Errorf("shm: duplicate group rank %d", r)
		}
		t.gi[r] = i
		if r == cfg.Rank {
			t.idx = i
		}
	}
	if t.idx < 0 {
		return nil, fmt.Errorf("shm: rank %d not in group %v", cfg.Rank, ranks)
	}

	m := len(ranks)
	switch {
	case cfg.Seg != nil:
		if cfg.Seg.m != m || cfg.Seg.ringCap != cfg.RingBytes {
			return nil, fmt.Errorf("shm: segment geometry (%d ranks, %d ring) does not match config (%d, %d)",
				cfg.Seg.m, cfg.Seg.ringCap, m, cfg.RingBytes)
		}
		t.seg = cfg.Seg
	case cfg.Path != "":
		seg, err := OpenFileSegment(cfg.Path, m, cfg.RingBytes, cfg.WorldID, cfg.AttachTimeout)
		if err != nil {
			return nil, err
		}
		t.seg = seg
		t.ownSeg = true
	default:
		return nil, fmt.Errorf("shm: neither Path nor Seg configured")
	}

	t.door = u32at(t.seg.b, t.seg.presence(t.idx)+offDoor)
	t.door.Store(0) // a killed predecessor may have left its intent up
	if t.seg.doors != nil {
		t.bell = newChanBell(t.seg.doors[t.idx])
	} else {
		b, err := newFifoBell(cfg.Path, t.idx)
		if err != nil {
			if t.ownSeg {
				t.seg.Close()
			}
			return nil, err
		}
		t.bell = b
	}
	t.peers = make([]*shmPeer, m)
	for i, r := range ranks {
		if i == t.idx {
			continue
		}
		p := &shmPeer{
			rank: r,
			out:  t.seg.ring(t.idx, i),
			in:   t.seg.ring(i, t.idx),
			door: u32at(t.seg.b, t.seg.presence(i)+offDoor),
		}
		if t.seg.doors != nil {
			p.knock = chanKnocker{t.seg.doors[i]}
		} else {
			p.knock = newFifoKnocker(cfg.Path, i)
		}
		t.peers[i] = p
	}
	t.attach()
	return t, nil
}

// attach publishes this member's presence: inbound backlogs are dropped
// first on a rejoin (the replacement must not see its predecessor's
// traffic), then the slot's epoch, pid, heartbeat stamp and finally the
// bumped attach generation — the generation write is the release that
// makes the attach visible whole.
func (t *Transport) attach() {
	if t.cfg.Rejoin {
		var dropped uint64
		for _, p := range t.peers {
			if p != nil {
				dropped += p.in.drain()
			}
		}
		t.stats.drainedBytes.Add(int64(dropped))
	}
	off := t.seg.presence(t.idx)
	u64at(t.seg.b, off+offEpoch).Store(t.cfg.Epoch)
	u64at(t.seg.b, off+offPid).Store(uint64(os.Getpid()))
	i64at(t.seg.b, off+offBeat).Store(time.Now().UnixNano())
	u64at(t.seg.b, off+offAgen).Add(1)
}

// Size returns the world size.
func (t *Transport) Size() int { return t.cfg.Size }

// Self returns the hosted rank.
func (t *Transport) Self() int { return t.cfg.Rank }

// Ranks returns the co-located group (ascending world ranks).
func (t *Transport) Ranks() []int { return append([]int(nil), t.cfg.Ranks...) }

// Local reports whether r is the hosted rank.
func (t *Transport) Local(r int) bool { return r == t.cfg.Rank }

// Wallclock reports true: shared memory runs in real time.
func (t *Transport) Wallclock() bool { return true }

// Reaches reports whether rank r shares this segment.
func (t *Transport) Reaches(r int) bool {
	return r >= 0 && r < t.cfg.Size && t.gi[r] >= 0
}

// SetTracer attaches a span recorder; ring operations trace as
// shm_send/shm_recv wall-clock spans.
func (t *Transport) SetTracer(tr *obs.Tracer) { t.tracer.Store(tr) }

// SetHealth wires the liveness callbacks.
func (t *Transport) SetHealth(h transport.HealthFuncs) { t.health.Store(&h) }

// Epoch returns the current membership epoch.
func (t *Transport) Epoch() uint64 { return t.epoch.Load() }

// SetEpoch raises the membership epoch and republishes it in the
// presence slot; a stale incarnation re-attaching with an older epoch is
// then ignored by the detector instead of reported Up.
func (t *Transport) SetEpoch(e uint64) {
	for {
		old := t.epoch.Load()
		if e <= old {
			return
		}
		if t.epoch.CompareAndSwap(old, e) {
			u64at(t.seg.b, t.seg.presence(t.idx)+offEpoch).Store(e)
			return
		}
	}
}

// PauseHeartbeats suppresses (true) or resumes (false) this member's
// presence stamping while it keeps consuming — the deterministic
// equivalent of a SIGSTOP for failure-detection tests.
func (t *Transport) PauseHeartbeats(pause bool) { t.paused.Store(pause) }

// LastHeard returns when rank r last proved liveness (zero time if never
// or not co-located).
func (t *Transport) LastHeard(r int) time.Time {
	if !t.Reaches(r) || r == t.cfg.Rank {
		return time.Time{}
	}
	ns := t.peers[t.gi[r]].lastHeard.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Health returns the failure detector's view of rank r.
func (t *Transport) Health(r int) transport.PeerHealth {
	h := transport.PeerHealth{Rank: r, LastHeard: t.LastHeard(r)}
	if t.Reaches(r) && r != t.cfg.Rank {
		p := t.peers[t.gi[r]]
		h.Alive = p.alive.Load()
		h.Suspect = p.suspect.Load()
	}
	return h
}

// Occupancy reports the bytes currently sitting in this endpoint's
// outbound rings — records pushed but not yet popped by their consumers.
// The ring backlog is the shared-memory transport's natural backpressure
// signal: a slow or stalled consumer shows up here long before a push
// would block.
func (t *Transport) Occupancy() transport.Occupancy {
	var o transport.Occupancy
	for _, p := range t.peers {
		if p == nil || p.out == nil {
			continue
		}
		o.BacklogBytes += int64(p.out.used())
	}
	return o
}

// Stats returns a snapshot of the endpoint's counters.
func (t *Transport) Stats() Stats {
	c := &t.stats
	return Stats{
		FramesSent: c.framesSent.Load(), FramesRecv: c.framesRecv.Load(),
		BytesSent: c.bytesSent.Load(), BytesRecv: c.bytesRecv.Load(),
		VectoredSends:  c.vectoredSends.Load(),
		RingFullStalls: c.ringFullStalls.Load(), StallNanos: c.stallNanos.Load(),
		BeatsSent: c.beatsSent.Load(), BeatsRecv: c.beatsRecv.Load(),
		DrainedBytes: c.drainedBytes.Load(),
	}
}

func (t *Transport) trace(kind string, peer int, bytes int64, start, end float64, attrs ...obs.Attr) {
	tr := t.tracer.Load()
	if tr == nil || !tr.Enabled() {
		return
	}
	tr.Emit(obs.Span{Rank: t.cfg.Rank, Kind: kind, Peer: peer, Bytes: bytes,
		Start: start, End: end, Clock: obs.ClockWall, Attrs: attrs})
}

func (t *Transport) traceNow() (float64, bool) {
	tr := t.tracer.Load()
	if tr == nil || !tr.Enabled() {
		return 0, false
	}
	return tr.Now(), true
}

// Start waits for the whole group to attach, marks every peer alive, and
// begins consuming inbound rings and monitoring presence.
func (t *Transport) Start(deliver transport.Handler, down transport.DownFunc) error {
	if t.deliver != nil {
		return fmt.Errorf("shm: already started")
	}
	t.deliver = deliver
	t.down = down
	deadline := time.Now().Add(t.cfg.AttachTimeout)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		off := t.seg.presence(t.gi[p.rank])
		for u64at(t.seg.b, off+offAgen).Load() == 0 {
			if t.closed.Load() {
				return transport.ErrClosed
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("shm: rank %d never attached within %v", p.rank, t.cfg.AttachTimeout)
			}
			time.Sleep(100 * time.Microsecond)
		}
		p.seenAgen = u64at(t.seg.b, off+offAgen).Load()
		p.seenBeat = i64at(t.seg.b, off+offBeat).Load()
		p.lastHeard.Store(time.Now().UnixNano())
		p.alive.Store(true)
	}
	if len(t.peers) > 1 || t.peers[0] != nil {
		t.wg.Add(2)
		go t.pollLoop()
		go t.monitorLoop()
	}
	return nil
}

// Send delivers hdr+payload to rank to through the directed ring,
// spinning out backpressure when the ring is full.  Ownership of payload
// transfers here, exactly as for the other transports: every return path
// recycles it.
func (t *Transport) Send(to int, hdr transport.Header, payload []byte) error {
	if to < 0 || to >= t.cfg.Size {
		datatype.PutBuffer(payload)
		return fmt.Errorf("shm: rank %d out of range [0,%d)", to, t.cfg.Size)
	}
	if t.closed.Load() {
		datatype.PutBuffer(payload)
		return transport.ErrClosed
	}
	if to == t.cfg.Rank {
		t.deliver(to, hdr, payload)
		return nil
	}
	if t.gi[to] < 0 {
		datatype.PutBuffer(payload)
		return fmt.Errorf("shm: rank %d does not share the segment", to)
	}
	p := t.peers[t.gi[to]]
	start, traced := t.traceNow()
	nbytes := len(payload)
	p.wmu.Lock()
	segs := append(p.outSegs[:0], payload)
	err := t.push(p, &hdr, segs, nbytes)
	segs[0] = nil
	p.outSegs = segs[:0]
	p.wmu.Unlock()
	datatype.PutBuffer(payload)
	if err != nil {
		return err
	}
	t.stats.framesSent.Add(1)
	t.stats.bytesSent.Add(int64(recordBytes(nbytes)))
	if traced {
		if end, ok := t.traceNow(); ok {
			t.trace("shm_send", to, int64(nbytes), start, end, transport.IdentAttrs(hdr)...)
		}
	}
	return nil
}

// SendVectored gathers segs over user straight into the ring — the
// intra-node continuation of the fused wire path: no intermediate pack
// buffer exists on either side of the copy.  The caller keeps ownership
// of user and the memory must stay stable until return (it does: the
// caller blocks).
func (t *Transport) SendVectored(to int, hdr transport.Header, user []byte, segs []datatype.Segment) error {
	if to < 0 || to >= t.cfg.Size {
		return fmt.Errorf("shm: rank %d out of range [0,%d)", to, t.cfg.Size)
	}
	if t.closed.Load() {
		return transport.ErrClosed
	}
	nbytes := 0
	for _, s := range segs {
		nbytes += s.Len
	}
	if to == t.cfg.Rank {
		buf := datatype.GetBuffer(nbytes)
		off := 0
		for _, s := range segs {
			off += copy(buf[off:off+s.Len], user[s.Off:s.Off+s.Len])
		}
		t.stats.vectoredSends.Add(1)
		t.deliver(to, hdr, buf)
		return nil
	}
	if t.gi[to] < 0 {
		return fmt.Errorf("shm: rank %d does not share the segment", to)
	}
	p := t.peers[t.gi[to]]
	t.stats.vectoredSends.Add(1)
	start, traced := t.traceNow()
	p.wmu.Lock()
	gather := p.outSegs[:0]
	for _, s := range segs {
		if s.Len == 0 {
			continue
		}
		gather = append(gather, user[s.Off:s.Off+s.Len])
	}
	err := t.push(p, &hdr, gather, nbytes)
	for i := range gather {
		gather[i] = nil
	}
	p.outSegs = gather[:0]
	p.wmu.Unlock()
	if err != nil {
		return err
	}
	t.stats.framesSent.Add(1)
	t.stats.bytesSent.Add(int64(recordBytes(nbytes)))
	if traced {
		if end, ok := t.traceNow(); ok {
			t.trace("shm_send", to, int64(nbytes), start, end,
				transport.IdentAttrs(hdr, obs.Attr{Key: "vectored", Val: "true"})...)
		}
	}
	return nil
}

// spinBudget is the number of busy-poll iterations worth burning before
// yielding the CPU with a sleep.  Spinning pays only when the other side
// of the ring can make progress concurrently: the peer is a separate
// process (or at least a separate goroutine pinned elsewhere), so on a
// single-CPU host a runtime.Gosched loop just burns the spinner's whole
// OS timeslice while the peer — who holds the data or the space being
// waited for — cannot run at all.  There, sleeping immediately is what
// hands the core over.
func spinBudget(want int) int {
	if runtime.NumCPU() < 2 {
		return 0
	}
	return want
}

// push publishes one record to p's outbound ring, waiting out
// backpressure.  Caller holds p.wmu (the single-producer guarantee).
func (t *Transport) push(p *shmPeer, hdr *transport.Header, segs [][]byte, total int) error {
	if total > t.cfg.MaxFrame {
		return fmt.Errorf("shm: %d-byte payload exceeds frame limit %d", total, t.cfg.MaxFrame)
	}
	budget := spinBudget(128)
	spins := 0
	var stallStart time.Time
	for {
		if t.closed.Load() {
			return transport.ErrClosed
		}
		if !p.alive.Load() {
			return &transport.PeerDownError{Rank: p.rank}
		}
		if p.out.tryPush(hdr, segs, total) {
			if spins > 0 {
				t.stats.stallNanos.Add(time.Since(stallStart).Nanoseconds())
			}
			// Ring the peer's doorbell if its consumer announced it was
			// idle.  The record is already published (tryPush's tail store
			// is the release), so the consumer either sees it in its
			// pre-park rescan or is woken here — no ordering loses a frame.
			if p.door.Swap(0) == 1 {
				p.knock.knock()
			}
			return nil
		}
		if spins == 0 {
			// One stall per full episode, not per retry: the counter should
			// read "how often did a sender hit a full ring".
			t.stats.ringFullStalls.Add(1)
			stallStart = time.Now()
		}
		spins++
		if spins < budget {
			runtime.Gosched()
		} else {
			d := time.Duration(spins-budget+1) * time.Microsecond
			if d > 200*time.Microsecond {
				d = 200 * time.Microsecond
			}
			time.Sleep(d)
		}
	}
}

// parkTimeout bounds a doorbell park so Close stays prompt without
// producers having to wake an exiting consumer, and so a lost wake (a
// dying peer, a raced FIFO open) costs a bounded nap instead of a hang.
const parkTimeout = time.Millisecond

// pollLoop is the single consumer of every inbound ring: it drains
// records into the delivery handler, spinning briefly while traffic
// flows and parking on the doorbell when idle — under load the poll
// latency is what makes the intra-node path beat a loopback socket, and
// when idle the netpoller-routed knock keeps the first-frame latency in
// wakeup territory instead of costing a sleep-poll interval.
func (t *Transport) pollLoop() {
	defer t.wg.Done()
	budget := spinBudget(256)
	scan := func() bool {
		worked := false
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			if t.drainRing(p) {
				worked = true
			}
		}
		return worked
	}
	idle := 0
	for !t.closed.Load() {
		if scan() {
			idle = 0
			continue
		}
		idle++
		if idle < budget {
			runtime.Gosched()
			continue
		}
		// Park: announce intent, rescan once (producers publish the
		// record before checking the doorbell, so this ordering cannot
		// lose a wakeup), then wait out a wake or the timeout.
		t.door.Store(1)
		if scan() {
			t.door.Store(0)
			idle = 0
			continue
		}
		t.bell.park(parkTimeout)
		t.door.Store(0)
	}
}

// drainRing consumes up to a small batch of records from p's inbound
// ring, reporting whether any arrived.  A corrupt record is unrecoverable
// — the segment's invariants are broken — so the ring is abandoned and
// the peer declared down.
func (t *Transport) drainRing(p *shmPeer) bool {
	any := false
	for n := 0; n < 32; n++ {
		hdr, payload, ok, err := p.in.tryPop(t.cfg.MaxFrame)
		if err != nil {
			p.in.drain()
			t.peerDown(p, err.Error())
			return any
		}
		if !ok {
			return any
		}
		any = true
		p.lastHeard.Store(time.Now().UnixNano())
		t.stats.framesRecv.Add(1)
		t.stats.bytesRecv.Add(int64(recordBytes(len(payload))))
		if now, ok := t.traceNow(); ok {
			t.trace("shm_recv", p.rank, int64(len(payload)), now, now, transport.IdentAttrs(hdr)...)
		}
		t.deliver(t.cfg.Rank, hdr, payload)
	}
	return any
}

// monitorLoop is the failure detector: it stamps this member's heartbeat
// into its presence slot and scores every peer from theirs.  A changed
// attach generation with a current epoch is a replacement coming up; a
// dead pid (co-located processes) is an immediate hard failure; silence
// past the miss window raises suspicion and past the fail window declares
// the peer down, exactly the ladder the TCP detector climbs.
func (t *Transport) monitorLoop() {
	defer t.wg.Done()
	interval := t.cfg.Heartbeat.Interval
	score := interval > 0
	if !score {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	myOff := t.seg.presence(t.idx)
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		if !t.paused.Load() {
			i64at(t.seg.b, myOff+offBeat).Store(time.Now().UnixNano())
			t.stats.beatsSent.Add(1)
		}
		now := time.Now()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			off := t.seg.presence(t.gi[p.rank])
			agen := u64at(t.seg.b, off+offAgen).Load()
			beat := i64at(t.seg.b, off+offBeat).Load()
			if agen != p.seenAgen {
				t.peerAttached(p, agen, beat, off, now)
				continue
			}
			if beat != p.seenBeat {
				p.seenBeat = beat
				p.lastHeard.Store(now.UnixNano())
				t.stats.beatsRecv.Add(1)
				if now2, ok := t.traceNow(); ok {
					t.trace("heartbeat", p.rank, 0, now2, now2)
				}
				if h := t.health.Load(); h != nil && h.Beat != nil {
					h.Beat(p.rank)
				}
			}
			if !p.alive.Load() {
				continue
			}
			if pid := int(u64at(t.seg.b, off+offPid).Load()); pid != 0 && pid != os.Getpid() && !pidAlive(pid) {
				t.peerDown(p, fmt.Sprintf("pid %d gone", pid))
				continue
			}
			if !score {
				continue
			}
			hb := t.cfg.Heartbeat
			silent := now.Sub(time.Unix(0, p.lastHeard.Load()))
			missed := int(silent / hb.Interval)
			switch {
			case missed >= hb.FailAfter:
				if wnow, ok := t.traceNow(); ok {
					t.trace("suspect", p.rank, 0, wnow, wnow,
						obs.Attr{Key: "hard", Val: "true"},
						obs.Attr{Key: "silent", Val: silent.String()})
				}
				t.peerDown(p, fmt.Sprintf("silent for %v", silent))
			case missed >= hb.Miss:
				if p.suspect.CompareAndSwap(false, true) {
					if wnow, ok := t.traceNow(); ok {
						t.trace("suspect", p.rank, 0, wnow, wnow,
							obs.Attr{Key: "silent", Val: silent.String()})
					}
					if h := t.health.Load(); h != nil && h.Suspect != nil {
						h.Suspect(p.rank, true, silent)
					}
				}
			default:
				if p.suspect.CompareAndSwap(true, false) {
					if h := t.health.Load(); h != nil && h.Suspect != nil {
						h.Suspect(p.rank, false, silent)
					}
				}
			}
		}
	}
}

// peerAttached handles an attach-generation change: a new incarnation of
// the peer published its slot.  An incarnation carrying an older epoch
// than ours is a fenced-out zombie and is ignored; a current one is
// adopted and reported Up — the shared-memory equivalent of a rejoining
// peer's fresh connection registering.
func (t *Transport) peerAttached(p *shmPeer, agen uint64, beat int64, off int, now time.Time) {
	epoch := u64at(t.seg.b, off+offEpoch).Load()
	if epoch < t.epoch.Load() {
		return // stale incarnation; keep scoring the old observation
	}
	first := p.seenAgen == 0
	if !first && p.alive.Load() {
		// A generation bump on a peer still scored alive means the old
		// incarnation died without the detector ever observing it — the
		// replacement won the race against our next tick.  A socket
		// transport cannot miss this (the EOF arrives before the new
		// connection), and the layers above depend on the death report:
		// a rank blocked on the dead incarnation's traffic fails over
		// only when its peer is declared down.  Report the death first,
		// then adopt the replacement.
		t.peerDown(p, fmt.Sprintf("replaced by attach generation %d", agen))
	}
	p.seenAgen = agen
	p.seenBeat = beat
	p.lastHeard.Store(now.UnixNano())
	p.suspect.Store(false)
	p.alive.Store(true)
	if first || t.closed.Load() {
		return
	}
	if wnow, ok := t.traceNow(); ok {
		t.trace("shm_attach", p.rank, 0, wnow, wnow)
	}
	p.liveMu.Lock()
	if h := t.health.Load(); h != nil && h.Up != nil {
		h.Up(p.rank)
	}
	p.liveMu.Unlock()
}

// peerDown declares one peer failed, once per incarnation.
func (t *Transport) peerDown(p *shmPeer, reason string) {
	if !p.alive.CompareAndSwap(true, false) {
		return
	}
	p.suspect.Store(false)
	if now, ok := t.traceNow(); ok {
		t.trace("shm_peer_down", p.rank, 0, now, now,
			obs.Attr{Key: "reason", Val: reason})
	}
	p.liveMu.Lock()
	defer p.liveMu.Unlock()
	if !t.closed.Load() && t.down != nil {
		t.down(p.rank)
	}
}

// Close shuts the endpoint down: the poll and monitor goroutines stop and
// a file-backed mapping is released.  The segment file stays on disk —
// the launcher owns the scratch directory, and a replacement for this
// rank re-attaches to the same rings.
func (t *Transport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.stop)
	t.wg.Wait() // the poll loop's parks are parkTimeout-bounded, so this is prompt
	t.bell.close()
	for _, p := range t.peers {
		if p != nil {
			p.knock.close()
		}
	}
	if t.ownSeg {
		return t.seg.Close()
	}
	return nil
}

package shm

import (
	"bytes"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nccd/internal/datatype"
	"nccd/internal/transport"
)

type recvSink struct {
	mu   sync.Mutex
	got  [][]byte
	hdrs []transport.Header
	n    atomic.Int64
}

func (s *recvSink) handler(to int, hdr transport.Header, payload []byte) {
	s.mu.Lock()
	s.got = append(s.got, append([]byte(nil), payload...))
	s.hdrs = append(s.hdrs, hdr)
	s.mu.Unlock()
	datatype.PutBuffer(payload)
	s.n.Add(1)
}

func (s *recvSink) wait(t *testing.T, target int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.n.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d messages", s.n.Load(), target)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// startGroup brings up one Transport per rank of an m-rank group over a
// shared in-process segment.
func startGroup(t *testing.T, m int, hb transport.HeartbeatConfig) ([]*Transport, []*recvSink) {
	t.Helper()
	seg, err := NewMemSegment(m, 1<<16, 0x5117)
	if err != nil {
		t.Fatal(err)
	}
	ranks := make([]int, m)
	for i := range ranks {
		ranks[i] = i
	}
	trs := make([]*Transport, m)
	sinks := make([]*recvSink, m)
	for r := 0; r < m; r++ {
		tr, err := New(Config{Rank: r, Size: m, Ranks: ranks, WorldID: 0x5117,
			Seg: seg, RingBytes: 1 << 16, Heartbeat: hb})
		if err != nil {
			t.Fatal(err)
		}
		trs[r] = tr
		sinks[r] = &recvSink{}
	}
	for r := 0; r < m; r++ {
		if err := trs[r].Start(sinks[r].handler, nil); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs, sinks
}

// TestSendRecvPair exercises the basic framed contract: payloads and
// headers cross the ring intact, in order, in both directions.
func TestSendRecvPair(t *testing.T) {
	trs, sinks := startGroup(t, 2, transport.HeartbeatConfig{})
	const rounds = 100
	for i := 0; i < rounds; i++ {
		payload := datatype.GetBuffer(i * 13 % 700)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		hdr := transport.Header{Ctx: 42, Src: 0, Tag: int32(i)}
		if err := trs[0].Send(1, hdr, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	sinks[1].wait(t, rounds)
	sinks[1].mu.Lock()
	defer sinks[1].mu.Unlock()
	for i, hdr := range sinks[1].hdrs {
		if int(hdr.Tag) != i {
			t.Fatalf("message %d arrived with tag %d", i, hdr.Tag)
		}
		if len(sinks[1].got[i]) != i*13%700 {
			t.Fatalf("message %d: %d bytes", i, len(sinks[1].got[i]))
		}
	}
}

// TestVectoredMatchesPacked sends the same strided gather both ways and
// requires identical delivery.
func TestVectoredMatchesPacked(t *testing.T) {
	trs, sinks := startGroup(t, 2, transport.HeartbeatConfig{})
	user := make([]byte, 4096)
	for i := range user {
		user[i] = byte(i * 31)
	}
	segs := []datatype.Segment{{Off: 100, Len: 900}, {Off: 1500, Len: 0}, {Off: 2000, Len: 1000}, {Off: 3500, Len: 96}}
	packed := datatype.GetBuffer(1996)
	off := 0
	for _, s := range segs {
		off += copy(packed[off:off+s.Len], user[s.Off:s.Off+s.Len])
	}
	if err := trs[0].Send(1, transport.Header{Ctx: 1, Tag: 1}, packed); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].SendVectored(1, transport.Header{Ctx: 1, Tag: 2}, user, segs); err != nil {
		t.Fatal(err)
	}
	sinks[1].wait(t, 2)
	sinks[1].mu.Lock()
	defer sinks[1].mu.Unlock()
	if !bytes.Equal(sinks[1].got[0], sinks[1].got[1]) {
		t.Fatal("vectored gather differs from packed send")
	}
	if st := trs[0].Stats(); st.VectoredSends != 1 {
		t.Fatalf("vectored sends counted %d", st.VectoredSends)
	}
}

// TestBackpressureCounted overruns a ring much smaller than the traffic
// and checks every frame still arrives, with stalls counted.
func TestBackpressureCounted(t *testing.T) {
	seg, err := NewMemSegment(2, 1<<10, 0xbead)
	if err != nil {
		t.Fatal(err)
	}
	var trs [2]*Transport
	var sink recvSink
	for r := 0; r < 2; r++ {
		tr, err := New(Config{Rank: r, Size: 2, Ranks: []int{0, 1}, WorldID: 0xbead,
			Seg: seg, RingBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		trs[r] = tr
		defer tr.Close()
	}
	if err := trs[1].Start(sink.handler, nil); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Start(func(int, transport.Header, []byte) {}, nil); err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		payload := datatype.GetBuffer(400) // ~2 records fill the 1 KiB ring
		if err := trs[0].Send(1, transport.Header{Tag: int32(i)}, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	sink.wait(t, rounds)
	if st := trs[0].Stats(); st.RingFullStalls == 0 {
		t.Fatal("no ring-full stalls counted despite 80x overrun")
	}
}

// TestHeartbeatFailureDetection pauses one member's presence stamping and
// expects the peer to walk the suspect → down ladder; resuming before the
// hard deadline must clear the suspicion instead.
func TestHeartbeatFailureDetection(t *testing.T) {
	hb := transport.HeartbeatConfig{Interval: 10 * time.Millisecond, Miss: 3, FailAfter: 30}
	seg, err := NewMemSegment(2, 1<<16, 0x4eab)
	if err != nil {
		t.Fatal(err)
	}
	var trs [2]*Transport
	for r := 0; r < 2; r++ {
		tr, err := New(Config{Rank: r, Size: 2, Ranks: []int{0, 1}, WorldID: 0x4eab,
			Seg: seg, RingBytes: 1 << 16, Heartbeat: hb})
		if err != nil {
			t.Fatal(err)
		}
		trs[r] = tr
		defer tr.Close()
	}
	var suspected, unsuspected, downed atomic.Int64
	trs[0].SetHealth(transport.HealthFuncs{
		Suspect: func(r int, s bool, silent time.Duration) {
			if s {
				suspected.Add(1)
			} else {
				unsuspected.Add(1)
			}
		},
	})
	drop := func(to int, hdr transport.Header, p []byte) { datatype.PutBuffer(p) }
	if err := trs[0].Start(drop, func(r int) { downed.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Start(drop, nil); err != nil {
		t.Fatal(err)
	}

	trs[1].PauseHeartbeats(true)
	deadline := time.Now().Add(5 * time.Second)
	for suspected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never suspected")
		}
		time.Sleep(time.Millisecond)
	}
	trs[1].PauseHeartbeats(false)
	for unsuspected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("suspicion never cleared after resume")
		}
		time.Sleep(time.Millisecond)
	}
	if downed.Load() != 0 {
		t.Fatal("recovered peer was declared down")
	}
	if !trs[0].Health(1).Alive {
		t.Fatal("peer not alive after recovery")
	}

	// Now let the silence ripen into a hard failure.
	trs[1].PauseHeartbeats(true)
	for downed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never declared down")
		}
		time.Sleep(time.Millisecond)
	}
	if trs[0].Health(1).Alive {
		t.Fatal("failed peer still alive")
	}
	if err := trs[0].Send(1, transport.Header{}, datatype.GetBuffer(8)); err == nil {
		t.Fatal("send to failed peer succeeded")
	}
}

// TestRejoinDrainAndEpochFence replaces a member: the replacement drains
// the backlog its predecessor never consumed, peers report it Up only
// with a current epoch, and traffic flows again.
func TestRejoinDrainAndEpochFence(t *testing.T) {
	hb := transport.HeartbeatConfig{Interval: 10 * time.Millisecond, Miss: 2, FailAfter: 6}
	seg, err := NewMemSegment(2, 1<<16, 0x99)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rank int, epoch uint64, rejoin bool) *Transport {
		tr, err := New(Config{Rank: rank, Size: 2, Ranks: []int{0, 1}, WorldID: 0x99,
			Seg: seg, RingBytes: 1 << 16, Heartbeat: hb, Epoch: epoch, Rejoin: rejoin})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t0, t1 := mk(0, 0, false), mk(1, 0, false)
	defer t0.Close()
	sink0 := &recvSink{}
	if err := t0.Start(sink0.handler, nil); err != nil {
		t.Fatal(err)
	}
	if err := t1.Start(func(int, transport.Header, []byte) {}, nil); err != nil {
		t.Fatal(err)
	}
	var up atomic.Int64
	t0.SetHealth(transport.HealthFuncs{Up: func(r int) { up.Add(1) }})

	// Stuff rank 1's inbound ring with traffic it will never consume,
	// then kill it (Close stops the consumer; survivors see silence).
	if err := t0.Send(1, transport.Header{Tag: 1}, datatype.GetBuffer(64)); err != nil {
		t.Fatal(err)
	}
	t1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for t0.Health(1).Alive {
		if time.Now().After(deadline) {
			t.Fatal("dead member never detected")
		}
		time.Sleep(time.Millisecond)
	}

	// Survivor commits the recovery epoch; the replacement attaches with
	// it, drains the stale backlog, and is reported Up.
	t0.SetEpoch(1)
	r1 := mk(1, 1, true)
	defer r1.Close()
	if st := r1.Stats(); st.DrainedBytes == 0 {
		t.Fatal("replacement drained nothing despite a queued backlog")
	}
	sink1 := &recvSink{}
	if err := r1.Start(sink1.handler, nil); err != nil {
		t.Fatal(err)
	}
	for up.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replacement never reported Up")
		}
		time.Sleep(time.Millisecond)
	}
	for !t0.Health(1).Alive {
		if time.Now().After(deadline) {
			t.Fatal("replacement never alive at survivor")
		}
		time.Sleep(time.Millisecond)
	}
	if err := t0.Send(1, transport.Header{Tag: 9}, datatype.GetBuffer(32)); err != nil {
		t.Fatalf("send to replacement: %v", err)
	}
	sink1.wait(t, 1)
	if int(sink1.hdrs[0].Tag) != 9 {
		t.Fatalf("replacement saw stale traffic first: tag %d", sink1.hdrs[0].Tag)
	}
}

// TestFileSegmentRoundTrip exercises the memory-mapped backing within one
// process: two endpoints attach to the same file and exchange frames.
func TestFileSegmentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	mk := func(rank int) *Transport {
		tr, err := New(Config{Rank: rank, Size: 2, Ranks: []int{0, 1}, WorldID: 0xf11e,
			Path: path, RingBytes: 1 << 14})
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		return tr
	}
	t0, t1 := mk(0), mk(1)
	defer t0.Close()
	defer t1.Close()
	sink := &recvSink{}
	if err := t1.Start(sink.handler, nil); err != nil {
		t.Fatal(err)
	}
	if err := t0.Start(func(int, transport.Header, []byte) {}, nil); err != nil {
		t.Fatal(err)
	}
	payload := datatype.GetBuffer(1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	want := append([]byte(nil), payload...)
	if err := t0.Send(1, transport.Header{Ctx: 5, Tag: 3}, payload); err != nil {
		t.Fatal(err)
	}
	sink.wait(t, 1)
	if !bytes.Equal(sink.got[0], want) {
		t.Fatal("mmap-backed payload corrupted")
	}
}

// TestGroupAllPairs runs a 4-member group with every directed pair
// active concurrently — the rings are independent, so no cross-pair
// interference is tolerated.
func TestGroupAllPairs(t *testing.T) {
	const m = 4
	const per = 50
	trs, sinks := startGroup(t, m, transport.HeartbeatConfig{})
	var wg sync.WaitGroup
	for src := 0; src < m; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for dst := 0; dst < m; dst++ {
					if dst == src {
						continue
					}
					payload := datatype.GetBuffer(64)
					payload[0] = byte(src)
					if err := trs[src].Send(dst, transport.Header{Src: int32(src), Tag: int32(i)}, payload); err != nil {
						t.Errorf("send %d->%d: %v", src, dst, err)
						return
					}
				}
			}
		}(src)
	}
	wg.Wait()
	for dst := 0; dst < m; dst++ {
		sinks[dst].wait(t, per*(m-1))
	}
}

package shm

import "time"

// The doorbell is how an idle ring consumer sleeps without giving up
// wakeup latency.  Polling alone forces a trade: spin (burns the CPU the
// producer needs on an oversubscribed host) or sleep (adds the sleep
// interval to every first-frame latency).  Instead the consumer
// announces intent through the presence slot's door word, rescans, and
// parks on its doorbell; a producer that observes the announcement after
// publishing a record rings the bell.
//
// The park deliberately rides the Go runtime's netpoller (a FIFO read
// for cross-process segments, a channel for in-process ones) rather than
// a raw futex on the segment: a goroutine blocked in a raw syscall loses
// its P after ~20µs and must re-acquire one when woken, which on a
// single-CPU host measures hundreds of microseconds per wake; a
// netpoller park resumes in the ~10µs range, the same path that makes
// the TCP transport's socket reads prompt.
//
// bell is the consumer half (owned by the member it belongs to), knocker
// the producer half (one per peer, aimed at that peer's bell).
type bell interface {
	// park blocks until a knock or the timeout; pending knocks are
	// absorbed.  Spurious returns are fine — the caller rescans.
	park(timeout time.Duration)
	close()
}

type knocker interface {
	// knock wakes the bell's parked consumer.  Must not block: a full
	// or missing bell means the consumer has wakes pending or is not
	// listening yet, and either way the frame is already published.
	knock()
	close()
}

// chanBell / chanKnocker serve in-process segments, where every member
// lives in one runtime and a buffered channel is the natural bell.
type chanBell struct {
	ch    chan struct{}
	timer *time.Timer
}

func newChanBell(ch chan struct{}) *chanBell {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return &chanBell{ch: ch, timer: t}
}

func (b *chanBell) park(timeout time.Duration) {
	b.timer.Reset(timeout)
	select {
	case <-b.ch:
		b.timer.Stop()
	case <-b.timer.C:
	}
}

func (b *chanBell) close() {}

type chanKnocker struct{ ch chan struct{} }

func (k chanKnocker) knock() {
	select {
	case k.ch <- struct{}{}:
	default: // a wake is already pending
	}
}

func (k chanKnocker) close() {}

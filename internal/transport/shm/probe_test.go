package shm

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"nccd/internal/transport"
)

// TestCrossProcessPingPong measures round-trip latency between two real
// processes sharing a segment file.  Log-only: no assertion, it exists to
// observe the wakeup path.
func TestCrossProcessPingPong(t *testing.T) {
	if os.Getenv("SHM_PROBE_SEG") != "" {
		probeChild(t)
		return
	}
	path := t.TempDir() + "/probe.seg"
	var cmds []*exec.Cmd
	for r := 0; r < 2; r++ {
		c := exec.Command(os.Args[0], "-test.run", "TestCrossProcessPingPong", "-test.v")
		c.Env = append(os.Environ(), "SHM_PROBE_SEG="+path, "SHM_PROBE_RANK="+strconv.Itoa(r))
		c.Stdout, c.Stderr = os.Stdout, os.Stderr
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		cmds = append(cmds, c)
	}
	for _, c := range cmds {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func probeChild(t *testing.T) {
	rank, _ := strconv.Atoi(os.Getenv("SHM_PROBE_RANK"))
	tr, err := New(Config{Rank: rank, Size: 2, Ranks: []int{0, 1}, WorldID: 7, Path: os.Getenv("SHM_PROBE_SEG")})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 64)
	if err := tr.Start(func(from int, hdr transport.Header, payload []byte) { got <- struct{}{} }, nil); err != nil {
		t.Fatal(err)
	}
	const iters = 5000
	peer := 1 - rank
	start := time.Now()
	for i := 0; i < iters; i++ {
		if rank == 0 {
			tr.Send(peer, transport.Header{}, make([]byte, 64))
			<-got
		} else {
			<-got
			tr.Send(peer, transport.Header{}, make([]byte, 64))
		}
	}
	if rank == 0 {
		el := time.Since(start)
		fmt.Printf("shm ping-pong: %d iters, %.1f us RTT\n", iters, float64(el.Microseconds())/iters)
	}
	tr.Close()
}

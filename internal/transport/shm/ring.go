package shm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"nccd/internal/datatype"
	"nccd/internal/transport"
)

// ring is one directed lock-free SPSC byte ring inside a segment.  The
// cursors are monotonic byte counts — head is owned by the single
// consumer, tail by the single producer — and positions wrap modulo the
// power-of-two capacity only at access time, so full (tail-head == cap)
// and empty (tail == head) never alias.
//
// A record is
//
//	[4] body length — uint32 LE, header + payload byte count
//	[…] body        — canonical transport.Header encoding, then payload
//
// The producer writes the record bytes with plain stores and publishes
// them with a release store of tail; the consumer acquires tail, copies
// the record out, and releases the space with a store of head.  Those two
// atomics are the entire synchronization protocol — they order the plain
// byte copies for both the hardware and the race detector, and a torn
// record is impossible: bytes beyond the published tail do not exist to
// the consumer.
type ring struct {
	head *atomic.Uint64
	tail *atomic.Uint64
	data []byte
	mask uint64
}

const recPrefixLen = 4

// recordBytes returns the ring footprint of a payload of n bytes.
func recordBytes(n int) int { return recPrefixLen + transport.HeaderLen + n }

func (r *ring) cap() uint64 { return uint64(len(r.data)) }

// free returns the space available to the producer right now.
func (r *ring) free() uint64 { return r.cap() - (r.tail.Load() - r.head.Load()) }

// used returns the bytes available to the consumer right now.
func (r *ring) used() uint64 { return r.tail.Load() - r.head.Load() }

// copyIn writes b at monotonic position pos, wrapping at the boundary,
// and returns the advanced position.
func (r *ring) copyIn(pos uint64, b []byte) uint64 {
	off := int(pos & r.mask)
	n := copy(r.data[off:], b)
	if n < len(b) {
		copy(r.data, b[n:])
	}
	return pos + uint64(len(b))
}

// copyOut reads len(b) bytes from monotonic position pos into b.
func (r *ring) copyOut(pos uint64, b []byte) uint64 {
	off := int(pos & r.mask)
	n := copy(b, r.data[off:])
	if n < len(b) {
		copy(b[n:], r.data)
	}
	return pos + uint64(len(b))
}

// tryPush publishes one record gathering hdr and the given payload
// segments; total is the segments' combined length.  It returns false
// without side effects when the ring lacks space — backpressure is the
// caller's loop.
func (r *ring) tryPush(hdr *transport.Header, segs [][]byte, total int) bool {
	need := uint64(recordBytes(total))
	if need > r.cap() {
		panic(fmt.Sprintf("shm: %d-byte record exceeds ring capacity %d", need, r.cap()))
	}
	if r.free() < need {
		return false
	}
	pos := r.tail.Load()
	var head [recPrefixLen + transport.HeaderLen]byte
	binary.LittleEndian.PutUint32(head[:], uint32(transport.HeaderLen+total))
	transport.AppendHeader(head[:recPrefixLen], hdr)
	pos = r.copyIn(pos, head[:])
	for _, s := range segs {
		pos = r.copyIn(pos, s)
	}
	r.tail.Store(pos) // release: the record becomes visible here
	return true
}

// tryPop consumes one record.  The payload is returned in a pooled buffer
// the caller owns; ok is false on an empty ring.  err reports a
// structurally impossible record — a corrupted segment — with the ring
// left untouched.
func (r *ring) tryPop(maxFrame int) (hdr transport.Header, payload []byte, ok bool, err error) {
	avail := r.used() // acquire: everything below tail is visible
	if avail == 0 {
		return hdr, nil, false, nil
	}
	pos := r.head.Load()
	var pfx [recPrefixLen]byte
	r.copyOut(pos, pfx[:])
	body := int(binary.LittleEndian.Uint32(pfx[:]))
	if body < transport.HeaderLen || body > maxFrame+transport.HeaderLen {
		return hdr, nil, false, fmt.Errorf("shm: corrupt ring record length %d", body)
	}
	if avail < uint64(recPrefixLen+body) {
		// The producer's tail store makes records visible whole; a partial
		// record here means the cursors themselves are damaged.
		return hdr, nil, false, fmt.Errorf("shm: ring holds %d of %d record bytes", avail, recPrefixLen+body)
	}
	var hb [transport.HeaderLen]byte
	p := r.copyOut(pos+recPrefixLen, hb[:])
	hdr = transport.DecodeHeader(hb[:])
	n := body - transport.HeaderLen
	payload = datatype.GetBuffer(n)
	r.copyOut(p, payload)
	r.head.Store(pos + uint64(recPrefixLen+body)) // release the space
	return hdr, payload, true, nil
}

// drain discards everything published so far — the fresh-connection
// semantics of a re-attach: the consumer owns head, so snapping it to
// tail atomically abandons the backlog.  Returns the bytes dropped.
func (r *ring) drain() uint64 {
	pos := r.head.Load()
	end := r.tail.Load()
	r.head.Store(end)
	return end - pos
}

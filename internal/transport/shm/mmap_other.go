//go:build !unix

package shm

import (
	"errors"
	"os"
)

// File-backed segments need mmap; non-unix platforms fall back to the
// in-process shared-slice mode only.
func mapShared(f *os.File, n int) ([]byte, error) {
	return nil, errors.New("shm: file-backed segments unsupported on this platform")
}

func unmapShared(b []byte) error { return nil }

// Without a cheap existence probe, assume the peer is alive and let the
// heartbeat stamps decide.
func pidAlive(pid int) bool { return true }

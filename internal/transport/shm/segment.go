// Package shm is the intra-node transport: a shared memory segment —
// memory-mapped for co-located processes, a plain shared slice for
// in-process worlds — carved into one lock-free SPSC ring per directed
// peer pair, plus a presence table the failure detector reads instead of
// heartbeat frames.  It implements the same framed send/recv contract as
// the inproc and TCP transports, including the zero-copy vectored gather
// path and the membership-epoch fencing the self-healing layer relies on.
package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"time"
	"unsafe"
)

// Segment geometry.  Every block is 64-byte aligned so the cursor words
// live on their own cache lines and the cross-process atomics are
// naturally aligned.
//
//	[64]  segment header: magic/state, world id, group size, ring capacity
//	[64]×m  presence slots: attach generation, epoch, heartbeat stamp, pid, doorbell
//	[128+cap]×m(m-1)  rings: head line, tail line, power-of-two data area
//
// A zeroed segment is a valid initial state: generation 0 means "never
// attached", and head == tail == 0 is an empty ring.  The first attacher
// claims the header with a compare-and-swap on the magic word and
// publishes the geometry; everyone else spins until the magic reads
// ready, then validates.
const (
	segHdrLen    = 64
	presenceLen  = 64
	ringHdrLen   = 128 // head cursor line + tail cursor line
	segMagicInit = 1
	segMagic     = 0x6e63636453484d31 // "nccdShM1"

	offWorldID = 8
	offGroup   = 16
	offRingCap = 20

	offAgen  = 0
	offEpoch = 8
	offBeat  = 16
	offPid   = 24
	// offDoor is the member's doorbell gate: its ring consumer stores 1
	// before parking, and a producer that swaps it back to 0 after
	// publishing a record knocks on the member's bell (see doorbell.go).
	offDoor = 32

	offHead = 0
	offTail = 64
)

// Layout returns the byte size of a segment for a group of m ranks with
// the given per-ring data capacity (must be a power of two).
func Layout(m, ringCap int) int {
	return segHdrLen + m*presenceLen + m*(m-1)*(ringHdrLen+ringCap)
}

// Segment is an attached shared memory region.  The zero value is not
// usable; construct with NewMemSegment or OpenFileSegment.
type Segment struct {
	b       []byte
	m       int
	ringCap int
	f       *os.File // nil for in-process segments
	mapped  bool
	// doors carries the in-process doorbells (one per member); nil for
	// file-backed segments, whose members park on FIFOs instead.
	doors []chan struct{}
}

func u64at(b []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&b[off]))
}

func i64at(b []byte, off int) *atomic.Int64 {
	return (*atomic.Int64)(unsafe.Pointer(&b[off]))
}

func u32at(b []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&b[off]))
}

func checkGeometry(m, ringCap int) error {
	if m < 1 {
		return fmt.Errorf("shm: group size %d", m)
	}
	if ringCap < 1024 || ringCap&(ringCap-1) != 0 {
		return fmt.Errorf("shm: ring capacity %d not a power of two >= 1024", ringCap)
	}
	return nil
}

// NewMemSegment builds an in-process segment backed by an ordinary
// (64-bit-aligned) slice — the shared-slice mode used by single-process
// worlds, tests, and benchmarks.  Multiple Transport values in one process
// share the one Segment.
func NewMemSegment(m, ringCap int, worldID uint64) (*Segment, error) {
	if err := checkGeometry(m, ringCap); err != nil {
		return nil, err
	}
	n := Layout(m, ringCap)
	words := make([]uint64, (n+7)/8) // uint64 backing guarantees alignment
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
	s := &Segment{b: b, m: m, ringCap: ringCap, doors: make([]chan struct{}, m)}
	for i := range s.doors {
		s.doors[i] = make(chan struct{}, 1)
	}
	s.initHeader(worldID)
	return s, nil
}

// OpenFileSegment creates or attaches the file-backed segment at path for
// a group of m ranks.  Creation is idempotent: every member opens with
// O_CREATE and extends the file to the same size; the zero-filled pages a
// fresh file maps to are the valid empty state, and the header handshake
// below picks one initializer among racing attachers.
func OpenFileSegment(path string, m, ringCap int, worldID uint64, timeout time.Duration) (*Segment, error) {
	if err := checkGeometry(m, ringCap); err != nil {
		return nil, err
	}
	n := Layout(m, ringCap)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: open segment: %w", err)
	}
	if err := f.Truncate(int64(n)); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size segment: %w", err)
	}
	b, err := mapShared(f, n)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Segment{b: b, m: m, ringCap: ringCap, f: f, mapped: true}
	if err := s.handshake(worldID, timeout); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// initHeader publishes the geometry unconditionally (single-initializer
// paths: in-process segments).
func (s *Segment) initHeader(worldID uint64) {
	binary.LittleEndian.PutUint64(s.b[offWorldID:], worldID)
	binary.LittleEndian.PutUint32(s.b[offGroup:], uint32(s.m))
	binary.LittleEndian.PutUint32(s.b[offRingCap:], uint32(s.ringCap))
	u64at(s.b, 0).Store(segMagic)
}

// handshake elects an initializer among concurrently attaching members
// and validates the published geometry against the caller's expectation.
func (s *Segment) handshake(worldID uint64, timeout time.Duration) error {
	magic := u64at(s.b, 0)
	if magic.CompareAndSwap(0, segMagicInit) {
		s.initHeader(worldID)
		return nil
	}
	deadline := time.Now().Add(timeout)
	for magic.Load() != segMagic {
		if time.Now().After(deadline) {
			return fmt.Errorf("shm: segment header never initialized")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if got := binary.LittleEndian.Uint64(s.b[offWorldID:]); got != worldID {
		return fmt.Errorf("shm: segment world id %#x, want %#x", got, worldID)
	}
	if got := int(binary.LittleEndian.Uint32(s.b[offGroup:])); got != s.m {
		return fmt.Errorf("shm: segment group size %d, want %d", got, s.m)
	}
	if got := int(binary.LittleEndian.Uint32(s.b[offRingCap:])); got != s.ringCap {
		return fmt.Errorf("shm: segment ring capacity %d, want %d", got, s.ringCap)
	}
	return nil
}

// Close unmaps a file-backed segment.  The file itself is left for the
// launcher to remove with its scratch directory — a replacement for a
// killed rank re-attaches to the same rings.
func (s *Segment) Close() error {
	var err error
	if s.mapped {
		err = unmapShared(s.b)
		s.mapped = false
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// presence returns the byte offset of group member i's presence slot.
func (s *Segment) presence(i int) int { return segHdrLen + i*presenceLen }

// ringOff returns the byte offset of the directed ring src→dst (group
// indices, src != dst).
func (s *Segment) ringOff(src, dst int) int {
	k := dst
	if dst > src {
		k--
	}
	idx := src*(s.m-1) + k
	return segHdrLen + s.m*presenceLen + idx*(ringHdrLen+s.ringCap)
}

// ring builds the SPSC ring view for the directed pair src→dst.
func (s *Segment) ring(src, dst int) *ring {
	off := s.ringOff(src, dst)
	return &ring{
		head: u64at(s.b, off+offHead),
		tail: u64at(s.b, off+offTail),
		data: s.b[off+ringHdrLen : off+ringHdrLen+s.ringCap],
		mask: uint64(s.ringCap - 1),
	}
}

//go:build !unix

package shm

import "fmt"

// File-backed segments are unavailable off unix (mapShared errors first),
// so these exist only to keep the package compiling.
func newFifoBell(segPath string, member int) (bell, error) {
	return nil, fmt.Errorf("shm: doorbell fifos unsupported on this platform")
}

func newFifoKnocker(segPath string, member int) knocker { return noKnocker{} }

type noKnocker struct{}

func (noKnocker) knock() {}
func (noKnocker) close() {}

//go:build unix

package shm

import (
	"fmt"
	"os"
	"syscall"
)

// mapShared maps n bytes of f shared and writable.  The mapping is
// page-aligned, so the segment's 64-byte alignment invariants hold.
func mapShared(f *os.File, n int) ([]byte, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, n, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shm: mmap: %w", err)
	}
	return b, nil
}

func unmapShared(b []byte) error {
	return syscall.Munmap(b)
}

// pidAlive reports whether the process with the given pid exists (signal
// 0 probe).  EPERM still proves existence.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}

package floatbytes

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	v := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	b := Bytes(v)
	if len(b) != 40 {
		t.Fatalf("len = %d, want 40", len(b))
	}
	w := Floats(b)
	for i := range v {
		if w[i] != v[i] {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], v[i])
		}
	}
	// Aliasing: writing through one view is visible in the other.
	w[0] = 42
	if v[0] != 42 {
		t.Fatal("views do not alias")
	}
}

func TestEmpty(t *testing.T) {
	if Bytes(nil) != nil || Floats(nil) != nil {
		t.Fatal("empty conversions should be nil")
	}
}

func TestBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Floats(make([]byte, 7))
}

// Package floatbytes provides zero-copy reinterpretation between []float64
// and []byte, used at the boundary between numerical code (which wants
// float64 slices) and the communication layer (which moves bytes).  This is
// the single place in the repository that uses package unsafe; the
// conversions are the standard unsafe.Slice idiom and never outlive their
// source slice.
package floatbytes

import "unsafe"

// Bytes returns v's backing memory viewed as bytes.  The result aliases v.
func Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// Floats returns b viewed as float64s.  len(b) must be a multiple of 8 and
// b must be 8-byte aligned (slices from make([]byte, n) always are).  The
// result aliases b.
func Floats(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%8 != 0 {
		panic("floatbytes: length not a multiple of 8")
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		panic("floatbytes: misaligned byte slice")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

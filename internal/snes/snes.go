// Package snes implements the nonlinear-solver layer of the mini-PETSc
// stack (the SNES box of the paper's Figure 1): a Jacobian-free
// Newton–Krylov method with backtracking line search.  The Jacobian action
// is approximated by finite differences of the residual function, so users
// only supply F(x); each Newton step solves J d = -F with GMRES, and every
// residual evaluation drives whatever ghost communication the application's
// function performs.
package snes

import (
	"math"

	"nccd/internal/ksp"
	"nccd/internal/petsc"
)

// Function evaluates the nonlinear residual f = F(x).  It may perform
// collective communication (ghost exchanges); all ranks call it together.
type Function func(x, f *petsc.Vec)

// Newton is a Jacobian-free Newton–Krylov solver for F(x) = 0.
type Newton struct {
	// F is the residual function.
	F Function
	// Rtol is the relative decrease of ‖F‖ required for convergence
	// (default 1e-8); Atol the absolute floor (default 1e-50).
	Rtol, Atol float64
	// MaxIts caps Newton iterations (default 50).
	MaxIts int
	// LinearRtol is the inner GMRES tolerance (default 1e-4 — inexact
	// Newton); LinearMaxIts its iteration cap (default 200).
	LinearRtol   float64
	LinearMaxIts int
	// MaxBacktracks bounds the line search halvings (default 12).
	MaxBacktracks int
	// Monitor, when non-nil, receives (iteration, ‖F‖).
	Monitor func(it int, fnorm float64)
}

// jfOperator applies the finite-difference Jacobian action
// J(x) v ≈ (F(x + εv) − F(x)) / ε.
type jfOperator struct {
	f     Function
	x, fx *petsc.Vec // current point and residual
	xnorm float64
	xp    *petsc.Vec // work: perturbed point
	fp    *petsc.Vec // work: perturbed residual
}

func (j *jfOperator) Apply(v, out *petsc.Vec) {
	vnorm := v.Norm2()
	if vnorm == 0 {
		out.Set(0)
		return
	}
	eps := math.Sqrt(1e-14) * (1 + j.xnorm) / vnorm
	j.xp.Copy(j.x)
	j.xp.AXPY(eps, v)
	j.f(j.xp, j.fp)
	out.Copy(j.fp)
	out.AXPY(-1, j.fx)
	out.Scale(1 / eps)
}

// Solve runs Newton iteration from the initial guess in x, overwriting x
// with the solution.  Collective.
func (s *Newton) Solve(x *petsc.Vec) ksp.Result {
	rtol, atol := s.Rtol, s.Atol
	if rtol == 0 {
		rtol = 1e-8
	}
	if atol == 0 {
		atol = 1e-50
	}
	maxIts := s.MaxIts
	if maxIts == 0 {
		maxIts = 50
	}
	linRtol := s.LinearRtol
	if linRtol == 0 {
		linRtol = 1e-4
	}
	linMax := s.LinearMaxIts
	if linMax == 0 {
		linMax = 200
	}
	maxBt := s.MaxBacktracks
	if maxBt == 0 {
		maxBt = 12
	}

	fx := x.Duplicate()
	d := x.Duplicate()
	rhs := x.Duplicate()
	trial := x.Duplicate()
	ftrial := x.Duplicate()
	op := &jfOperator{f: s.F, x: x, fx: fx, xp: x.Duplicate(), fp: x.Duplicate()}

	s.F(x, fx)
	fnorm := fx.Norm2()
	f0 := fnorm
	if f0 == 0 {
		return ksp.Result{Iterations: 0, Residual: 0, Converged: true}
	}

	for it := 0; it <= maxIts; it++ {
		if s.Monitor != nil {
			s.Monitor(it, fnorm)
		}
		if fnorm <= rtol*f0 || fnorm <= atol {
			return ksp.Result{Iterations: it, Residual: fnorm, Converged: true}
		}
		if it == maxIts {
			break
		}

		// Solve J d = -F(x) inexactly.
		op.xnorm = x.Norm2()
		rhs.Copy(fx)
		rhs.Scale(-1)
		d.Set(0)
		(&ksp.GMRES{A: op, Rtol: linRtol, MaxIts: linMax}).Solve(rhs, d)

		// Backtracking line search on ‖F‖.
		lambda := 1.0
		accepted := false
		for bt := 0; bt < maxBt; bt++ {
			trial.Copy(x)
			trial.AXPY(lambda, d)
			s.F(trial, ftrial)
			tnorm := ftrial.Norm2()
			if tnorm < (1-1e-4*lambda)*fnorm {
				x.Copy(trial)
				fx.Copy(ftrial)
				fnorm = tnorm
				accepted = true
				break
			}
			lambda /= 2
		}
		if !accepted {
			// Stagnation: no step reduces the residual.
			return ksp.Result{Iterations: it, Residual: fnorm, Converged: false}
		}
	}
	return ksp.Result{Iterations: maxIts, Residual: fnorm, Converged: false}
}

package snes

import (
	"fmt"
	"math"
	"testing"

	"nccd/internal/dmda"
	"nccd/internal/mpi"
	"nccd/internal/petsc"
	"nccd/internal/simnet"
)

func runWorld(t *testing.T, n int, cfg mpi.Config, f func(c *mpi.Comm) error) *mpi.World {
	t.Helper()
	w := mpi.NewWorld(simnet.Uniform(n, simnet.IBDDR()), cfg)
	if err := w.Run(f); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewtonScalarQuadratic(t *testing.T) {
	// F(x)_i = x_i^2 - a_i has the root sqrt(a_i); Newton from x=1 must
	// converge quadratically.
	runWorld(t, 2, mpi.Optimized(), func(c *mpi.Comm) error {
		n := 8
		F := func(x, f *petsc.Vec) {
			xa, fa := x.Array(), f.Array()
			lo, _ := x.Range()
			for i := range xa {
				a := float64(lo + i + 2)
				fa[i] = xa[i]*xa[i] - a
			}
		}
		x := petsc.NewVec(c, n)
		x.Set(1)
		var norms []float64
		res := (&Newton{F: F, Rtol: 1e-12,
			Monitor: func(it int, fn float64) { norms = append(norms, fn) }}).Solve(x)
		if !res.Converged {
			return fmt.Errorf("newton did not converge: %v", res)
		}
		lo, _ := x.Range()
		for i, v := range x.Array() {
			want := math.Sqrt(float64(lo + i + 2))
			if math.Abs(v-want) > 1e-7 {
				return fmt.Errorf("x[%d] = %v, want %v", lo+i, v, want)
			}
		}
		// Quadratic-ish convergence: the last step should square the error.
		k := len(norms)
		if k >= 3 && norms[k-1] > norms[k-2] {
			return fmt.Errorf("residuals not decreasing: %v", norms)
		}
		return nil
	})
}

// bratuResidual builds F(u) = -∇²u - λ e^u on a DA (Dirichlet boundaries),
// the classic SNES test problem.
func bratuResidual(da *dmda.DA, lambda float64) Function {
	n0 := da.GlobalSize(0)
	n1 := da.GlobalSize(1)
	h0 := 1.0 / float64(n0+1)
	h1 := 1.0 / float64(n1+1)
	l := da.CreateLocalArray()
	return func(x, f *petsc.Vec) {
		da.GlobalToLocal(x, l)
		own := da.OwnedBox()
		ghost := da.GhostBox()
		gnx := ghost.Hi[0] - ghost.Lo[0]
		fa := f.Array()
		idx := 0
		for j := own.Lo[1]; j < own.Hi[1]; j++ {
			for i := own.Lo[0]; i < own.Hi[0]; i++ {
				li := da.LocalIndex(i, j, 0, 0)
				u := l[li]
				uxx := 2 * u / (h0 * h0)
				if i > 0 {
					uxx -= l[li-1] / (h0 * h0)
				}
				if i < n0-1 {
					uxx -= l[li+1] / (h0 * h0)
				}
				uyy := 2 * u / (h1 * h1)
				if j > 0 {
					uyy -= l[li-gnx] / (h1 * h1)
				}
				if j < n1-1 {
					uyy -= l[li+gnx] / (h1 * h1)
				}
				fa[idx] = uxx + uyy - lambda*math.Exp(u)
				idx++
			}
		}
	}
}

func TestNewtonBratu2D(t *testing.T) {
	for _, np := range []int{1, 4} {
		runWorld(t, np, mpi.Optimized(), func(c *mpi.Comm) error {
			da := dmda.New(c, []int{16, 16}, 1, dmda.StencilStar, 1, petsc.ScatterDatatype)
			F := bratuResidual(da, 6.0)
			u := da.CreateGlobalVec()
			res := (&Newton{F: F, Rtol: 1e-10}).Solve(u)
			if !res.Converged {
				return fmt.Errorf("np=%d: bratu newton: %v", np, res)
			}
			// The lower Bratu branch is positive in the interior and
			// bounded; sanity-check the solution's range.
			if mx := u.Max(); mx <= 0 || mx > 2 {
				return fmt.Errorf("np=%d: bratu max %v out of (0, 2]", np, mx)
			}
			return nil
		})
	}
}

func TestNewtonBratuRankInvariance(t *testing.T) {
	// The converged solution must not depend on the decomposition.
	var sums []float64
	for _, np := range []int{1, 3} {
		var sum float64
		runWorld(t, np, mpi.Optimized(), func(c *mpi.Comm) error {
			da := dmda.New(c, []int{12, 12}, 1, dmda.StencilStar, 1, petsc.ScatterHandTuned)
			u := da.CreateGlobalVec()
			res := (&Newton{F: bratuResidual(da, 5.0), Rtol: 1e-11}).Solve(u)
			if !res.Converged {
				return fmt.Errorf("not converged: %v", res)
			}
			s := u.Sum()
			if c.Rank() == 0 {
				sum = s
			}
			return nil
		})
		sums = append(sums, sum)
	}
	if math.Abs(sums[1]-sums[0]) > 1e-7*math.Abs(sums[0]) {
		t.Fatalf("solution depends on decomposition: %v vs %v", sums[0], sums[1])
	}
}

func TestNewtonZeroResidualStart(t *testing.T) {
	runWorld(t, 1, mpi.Optimized(), func(c *mpi.Comm) error {
		F := func(x, f *petsc.Vec) { f.Copy(x) } // root at 0
		x := petsc.NewVec(c, 4)
		res := (&Newton{F: F}).Solve(x)
		if !res.Converged || res.Iterations != 0 {
			return fmt.Errorf("zero start: %v", res)
		}
		return nil
	})
}

func TestNewtonStagnationReported(t *testing.T) {
	runWorld(t, 1, mpi.Optimized(), func(c *mpi.Comm) error {
		// F(x) = x^2 + 1 has no real root; Newton must stop unconverged
		// rather than loop forever.
		F := func(x, f *petsc.Vec) {
			fa, xa := f.Array(), x.Array()
			for i := range fa {
				fa[i] = xa[i]*xa[i] + 1
			}
		}
		x := petsc.NewVec(c, 2)
		x.Set(3)
		res := (&Newton{F: F, MaxIts: 30}).Solve(x)
		if res.Converged {
			return fmt.Errorf("converged on a rootless problem: %v", res)
		}
		return nil
	})
}

func TestNewtonMonitorAndMaxIts(t *testing.T) {
	runWorld(t, 1, mpi.Optimized(), func(c *mpi.Comm) error {
		F := func(x, f *petsc.Vec) {
			fa, xa := f.Array(), x.Array()
			for i := range fa {
				fa[i] = math.Tanh(xa[i]) // root at 0, slow far away
			}
		}
		x := petsc.NewVec(c, 3)
		x.Set(1.0)
		calls := 0
		res := (&Newton{F: F, Rtol: 1e-13, MaxIts: 3,
			Monitor: func(int, float64) { calls++ }}).Solve(x)
		if calls == 0 {
			return fmt.Errorf("monitor never called")
		}
		_ = res
		return nil
	})
}

// Package nccd reproduces "Nonuniformly Communicating Noncontiguous Data:
// A Case Study with PETSc and MPI" (Balaji, Buntinas, Balay, Smith, Thakur,
// Gropp; IPDPS 2007) as a pure-Go system: an MPI runtime with derived
// datatypes and nonuniform-volume collectives, a mini-PETSc stack (vectors,
// index sets, scatters, distributed arrays, Krylov solvers, geometric
// multigrid), a virtual-time cluster model standing in for the paper's
// InfiniBand testbed, and a benchmark harness regenerating every figure of
// the paper's evaluation.  See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The root package holds no code; the library lives under internal/ and the
// executables under cmd/.  Root-level bench_test.go hosts one testing.B
// benchmark per paper figure.
package nccd
